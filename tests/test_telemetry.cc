// Telemetry-layer tests: histogram bucketing/percentile math, metric label
// aggregation, the in-repo JSON writer/validator, Chrome-trace export, and
// the layer's core contract -- a run with telemetry (and tracing) enabled is
// bit-identical to the same run with telemetry off.
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "src/core/nextgen_malloc.h"
#include "src/telemetry/telemetry.h"
#include "src/workload/runner.h"
#include "src/workload/xalanc.h"
#include "tests/test_util.h"

namespace ngx {
namespace {

// ---- Histogram bucket math ----

TEST(Histogram, SmallValuesGetExactBuckets) {
  // 0..3 are exact: the bucket's upper bound is the value itself.
  for (std::uint64_t v = 0; v < 4; ++v) {
    EXPECT_EQ(Histogram::BucketUpperBound(Histogram::BucketOf(v)), v);
  }
}

TEST(Histogram, BucketUpperBoundIsTightAndMonotonic) {
  // Every value lands in a bucket whose range covers it, and the bucket
  // boundaries never overlap (upper(b-1) < v <= upper(b)).
  for (const std::uint64_t v :
       {4ull, 5ull, 7ull, 8ull, 100ull, 1000ull, 4095ull, 4096ull, 1ull << 20,
        (1ull << 40) + 123, (1ull << 62) + 1}) {
    const std::uint32_t b = Histogram::BucketOf(v);
    EXPECT_LE(v, Histogram::BucketUpperBound(b)) << v;
    ASSERT_GT(b, 0u);
    EXPECT_GT(v, Histogram::BucketUpperBound(b - 1)) << v;
  }
}

TEST(Histogram, QuantizationErrorBounded) {
  // 4 sub-buckets per octave bounds relative error at 25%.
  for (std::uint64_t v = 4; v < (1ull << 24); v = v * 3 + 1) {
    const std::uint64_t ub = Histogram::BucketUpperBound(Histogram::BucketOf(v));
    EXPECT_LE(static_cast<double>(ub - v) / static_cast<double>(v), 0.25) << v;
  }
}

TEST(Histogram, PercentilesExactForExactBucketValues) {
  // 100 samples of 0..3 cycle through the exact buckets: percentiles of a
  // distribution confined to them have no quantization error at all.
  Histogram h;
  for (int i = 0; i < 100; ++i) {
    h.Record(static_cast<std::uint64_t>(i % 4));  // 25 samples each of 0,1,2,3
  }
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.Percentile(25), 0u);
  EXPECT_EQ(h.Percentile(50), 1u);
  EXPECT_EQ(h.Percentile(75), 2u);
  EXPECT_EQ(h.Percentile(100), 3u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 3u);
}

TEST(Histogram, PercentileClampsToMax) {
  Histogram h;
  h.Record(1000);  // bucket upper bound is > 1000, but p100 must equal max
  EXPECT_EQ(h.Percentile(100), 1000u);
  EXPECT_EQ(h.Summary().max, 1000u);
  EXPECT_EQ(h.Summary().p99, 1000u);
}

TEST(Histogram, SummaryOrdering) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 10000; ++v) {
    h.Record(v);
  }
  const HistogramSummary s = h.Summary();
  EXPECT_EQ(s.count, 10000u);
  EXPECT_LE(s.p50, s.p95);
  EXPECT_LE(s.p95, s.p99);
  EXPECT_LE(s.p99, s.max);
  // Each percentile is within one bucket (25%) of the true order statistic.
  EXPECT_GE(s.p50, 5000u);
  EXPECT_LE(s.p50, 6250u);
  EXPECT_GE(s.p99, 9900u);
  EXPECT_EQ(s.max, 10000u);
}

TEST(Histogram, MergeAddsCountsAndExtremes) {
  Histogram a;
  Histogram b;
  a.Record(10);
  a.Record(20);
  b.Record(5);
  b.Record(40);
  a.Merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.sum(), 75u);
  EXPECT_EQ(a.min(), 5u);
  EXPECT_EQ(a.max(), 40u);
}

TEST(Histogram, EmptyHistogramIsAllZeros) {
  const Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.Percentile(99), 0u);
  EXPECT_EQ(h.Summary().p50, 0u);
}

// ---- Metric keys and label aggregation ----

TEST(Metrics, KeyCanonicalizesLabelOrder) {
  EXPECT_EQ(MetricKey("m", {{"b", "2"}, {"a", "1"}}), "m{a=1,b=2}");
  EXPECT_EQ(MetricKey("m", {}), "m");
}

TEST(Metrics, SameNameAndLabelsShareOneInstance) {
  MetricsRegistry reg;
  Counter& a = reg.GetCounter("x", {{"k", "v"}});
  Counter& b = reg.GetCounter("x", {{"k", "v"}});
  EXPECT_EQ(&a, &b);
  a.Add(3);
  EXPECT_EQ(b.value(), 3u);
}

TEST(Metrics, CounterTotalAggregatesOverLabelSubset) {
  MetricsRegistry reg;
  reg.GetCounter("ops", {{"shard", "0"}, {"op", "malloc"}}).Add(5);
  reg.GetCounter("ops", {{"shard", "0"}, {"op", "free"}}).Add(7);
  reg.GetCounter("ops", {{"shard", "1"}, {"op", "malloc"}}).Add(11);
  reg.GetCounter("other", {{"shard", "0"}}).Add(100);
  EXPECT_EQ(reg.CounterTotal("ops"), 23u);
  EXPECT_EQ(reg.CounterTotal("ops", {{"shard", "0"}}), 12u);
  EXPECT_EQ(reg.CounterTotal("ops", {{"op", "malloc"}}), 16u);
  EXPECT_EQ(reg.CounterTotal("ops", {{"shard", "2"}}), 0u);
}

TEST(Metrics, HistogramTotalMergesMatchingShards) {
  MetricsRegistry reg;
  reg.GetHistogram("lat", {{"shard", "0"}}).Record(10);
  reg.GetHistogram("lat", {{"shard", "0"}}).Record(30);
  reg.GetHistogram("lat", {{"shard", "1"}}).Record(500);
  const Histogram all = reg.HistogramTotal("lat");
  EXPECT_EQ(all.count(), 3u);
  EXPECT_EQ(all.max(), 500u);
  const Histogram s0 = reg.HistogramTotal("lat", {{"shard", "0"}});
  EXPECT_EQ(s0.count(), 2u);
  EXPECT_EQ(s0.max(), 30u);
}

TEST(Metrics, ToJsonIsValidAndDeterministic) {
  MetricsRegistry reg;
  reg.GetCounter("c", {{"a", "1"}}).Add(2);
  reg.GetGauge("g").Set(9);
  reg.GetHistogram("h", {{"q", "\"quoted\\path\""}}).Record(42);
  const std::string dump = reg.ToJson().Dump(2);
  std::string err;
  EXPECT_TRUE(JsonValidate(dump, &err)) << err;
  // Iteration is sorted by key, so a second dump is byte-identical.
  EXPECT_EQ(dump, reg.ToJson().Dump(2));
}

// ---- JSON writer / validator ----

TEST(Json, ValidatorAcceptsWellFormedDocuments) {
  for (const char* text :
       {"{}", "[]", "null", "-3.5e2", "\"s\"", R"({"a":[1,{"b":null}],"c":"\u00e9\n"})"}) {
    std::string err;
    EXPECT_TRUE(JsonValidate(text, &err)) << text << ": " << err;
  }
}

TEST(Json, ValidatorRejectsMalformedDocuments) {
  for (const char* text : {"", "{", "[1,]", "{\"a\":}", "{'a':1}", "nul", "1 2",
                           "\"unterminated", "{\"a\":1,}"}) {
    EXPECT_FALSE(JsonValidate(text)) << text;
  }
}

TEST(Json, DumpRoundTripsThroughValidator) {
  JsonValue o = JsonValue::Object();
  o.Set("name", JsonValue("bench \"x\"\\path\n"));
  o.Set("nan", JsonValue(std::numeric_limits<double>::quiet_NaN()));  // -> null
  JsonValue arr = JsonValue::Array();
  arr.Push(JsonValue(std::uint64_t{18446744073709551615ull}));
  arr.Push(JsonValue(-1.25));
  arr.Push(JsonValue(true));
  o.Set("vals", arr);
  for (const int indent : {0, 2}) {
    std::string err;
    EXPECT_TRUE(JsonValidate(o.Dump(indent), &err)) << err;
  }
}

// ---- Tracer ----

TEST(Tracer, ExportsValidChromeTraceJson) {
  Tracer tr;
  tr.SetTrackName(0, "app core 0");
  tr.Complete("malloc \"fast\"", 0, 100, 25);
  tr.Instant("ring_full", 1, 200);
  tr.Counter("queue_depth", 300, 7);
  std::ostringstream os;
  tr.WriteChromeTrace(os);
  std::string err;
  EXPECT_TRUE(JsonValidate(os.str(), &err)) << err;
  EXPECT_NE(os.str().find("traceEvents"), std::string::npos);
  EXPECT_EQ(os.str(), tr.ToChromeTraceJson());
}

TEST(Tracer, DropsBeyondCapWithoutGrowing) {
  Tracer tr(/*max_events=*/4);
  for (int i = 0; i < 10; ++i) {
    tr.Instant("e", 0, static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(tr.size(), 4u);
  EXPECT_EQ(tr.dropped(), 6u);
  EXPECT_TRUE(JsonValidate(tr.ToChromeTraceJson()));
}

TEST(Tracer, ReportsDroppedEventsInTraceMetadata) {
  // A saturated buffer must say so in the exported file: consumers can then
  // distinguish "quiet run" from "truncated capture".
  Tracer tr(/*max_events=*/2);
  for (int i = 0; i < 7; ++i) {
    tr.Instant("e", 0, static_cast<std::uint64_t>(i));
  }
  const std::string json = tr.ToChromeTraceJson();
  EXPECT_NE(json.find("\"dropped_events\":5"), std::string::npos) << json;
  // An unsaturated tracer reports zero, not nothing.
  Tracer ok(/*max_events=*/16);
  ok.Instant("e", 0, 1);
  EXPECT_NE(ok.ToChromeTraceJson().find("\"dropped_events\":0"), std::string::npos);
}

// ---- End-to-end: instrumentation on a real offloaded run ----

RunResult RunOffloaded(Machine& machine) {
  NgxConfig cfg = NgxConfig::PaperPrototype();
  NgxSystem sys = MakeNgxSystem(machine, cfg, /*server_core=*/1);
  XalancConfig wl_cfg;
  wl_cfg.documents = 2;
  wl_cfg.nodes_per_doc = 400;
  wl_cfg.transform_passes = 2;
  wl_cfg.compute_per_node = 100;
  XalancLike workload(wl_cfg);
  RunOptions opt;
  opt.cores = {0};
  opt.seed = 13;
  opt.server_cores = {1};
  RunResult r = RunWorkload(machine, *sys.allocator, workload, opt);
  sys.fabric->DrainAll();
  return r;
}

void ExpectSamePmu(const PmuCounters& a, const PmuCounters& b, const char* what) {
  EXPECT_EQ(a.cycles, b.cycles) << what;
  EXPECT_EQ(a.instructions, b.instructions) << what;
  EXPECT_EQ(a.loads, b.loads) << what;
  EXPECT_EQ(a.stores, b.stores) << what;
  EXPECT_EQ(a.atomic_rmws, b.atomic_rmws) << what;
  EXPECT_EQ(a.l1d_load_misses, b.l1d_load_misses) << what;
  EXPECT_EQ(a.l1d_store_misses, b.l1d_store_misses) << what;
  EXPECT_EQ(a.l2_load_misses, b.l2_load_misses) << what;
  EXPECT_EQ(a.l2_store_misses, b.l2_store_misses) << what;
  EXPECT_EQ(a.llc_load_misses, b.llc_load_misses) << what;
  EXPECT_EQ(a.llc_store_misses, b.llc_store_misses) << what;
  EXPECT_EQ(a.remote_hitm, b.remote_hitm) << what;
  EXPECT_EQ(a.dtlb_load_misses, b.dtlb_load_misses) << what;
  EXPECT_EQ(a.dtlb_store_misses, b.dtlb_store_misses) << what;
  EXPECT_EQ(a.dtlb_l1_misses, b.dtlb_l1_misses) << what;
  EXPECT_EQ(a.alloc_instructions, b.alloc_instructions) << what;
  EXPECT_EQ(a.alloc_cycles, b.alloc_cycles) << what;
  EXPECT_EQ(a.invalidations_sent, b.invalidations_sent) << what;
  EXPECT_EQ(a.invalidations_received, b.invalidations_received) << what;
  EXPECT_EQ(a.writebacks, b.writebacks) << what;
}

TEST(TelemetryDeterminism, EnabledRunIsBitIdenticalToDisabled) {
  // The core contract: telemetry (metrics + tracing + PMU snapshots) only
  // reads simulation state. Same machine config, same workload, same seed
  // -- every counter and clock must match with it on vs off.
  Machine plain(MachineConfig::Default(2));
  const RunResult r_off = RunOffloaded(plain);

  Machine instrumented(MachineConfig::Default(2));
  TelemetryConfig tc;
  tc.enabled = true;
  tc.trace = true;
  tc.pmu_snapshot_interval = 50000;
  instrumented.EnableTelemetry(tc);
  const RunResult r_on = RunOffloaded(instrumented);

  EXPECT_EQ(r_off.wall_cycles, r_on.wall_cycles);
  ExpectSamePmu(r_off.app, r_on.app, "app");
  ExpectSamePmu(r_off.server, r_on.server, "server");
  EXPECT_EQ(r_off.alloc_stats.mallocs, r_on.alloc_stats.mallocs);
  EXPECT_EQ(r_off.alloc_stats.frees, r_on.alloc_stats.frees);

  // And the instrumented run actually observed something.
  const MetricsRegistry& m = instrumented.telemetry().metrics();
  EXPECT_FALSE(m.empty());
  EXPECT_GT(m.CounterTotal("offload.sync_requests"), 0u);
  EXPECT_GT(instrumented.telemetry().tracer().size(), 0u);
}

TEST(TelemetryDeterminism, ShardSyncLatencyDigestIsPopulatedAndSane) {
  Machine machine(MachineConfig::Default(2));
  TelemetryConfig tc;
  tc.enabled = true;
  machine.EnableTelemetry(tc);
  const RunResult r = RunOffloaded(machine);

  ASSERT_EQ(r.shard_sync_latency.size(), 1u);
  const HistogramSummary& s = r.shard_sync_latency[0];
  EXPECT_GT(s.count, 0u);
  EXPECT_GT(s.p50, 0u) << "every sync round trip costs cycles";
  EXPECT_LE(s.p50, s.p95);
  EXPECT_LE(s.p95, s.p99);
  EXPECT_LE(s.p99, s.max);
  // The digest is a client-observed latency: it must cover at least the
  // sync mallocs the allocator reports.
  EXPECT_GE(s.count, 1u);
  // Without telemetry the digest stays empty.
  Machine off(MachineConfig::Default(2));
  EXPECT_TRUE(RunOffloaded(off).shard_sync_latency.empty());
}

// ---- Flight recorder (DESIGN.md §13) ----

TEST(FlightRecorder, AttributionBucketsAreAnExactDecomposition) {
  Machine machine(MachineConfig::Default(2));
  TelemetryConfig tc;
  tc.enabled = true;
  tc.recorder = true;
  machine.EnableTelemetry(tc);
  const RunResult r = RunOffloaded(machine);

  ASSERT_TRUE(r.recorder_enabled);
  const CycleAttribution& at = r.attribution;
  EXPECT_GT(at.client_op, 0u) << "allocator ops must have been scoped";
  EXPECT_GT(at.server_busy, 0u) << "the shard core must have served requests";
  // Exact by construction, not within a tolerance: the derived buckets are
  // defined as the remainders of the two measured windows.
  EXPECT_EQ(at.client_path() + at.sync_stall + at.ring_wait, at.client_op);
  EXPECT_EQ(at.server_carve + at.server_drain(), at.server_busy);
  EXPECT_EQ(at.client_op + at.server_busy, at.total());
  // The client spends at most its own wall clock inside allocator ops.
  EXPECT_LE(at.client_op, r.wall_cycles);
}

TEST(FlightRecorder, TrafficMatrixAccountsEveryOperation) {
  Machine machine(MachineConfig::Default(2));
  TelemetryConfig tc;
  tc.enabled = true;
  tc.recorder = true;
  machine.EnableTelemetry(tc);
  const RunResult r = RunOffloaded(machine);

  const TrafficMatrix& tm = r.traffic_matrix;
  ASSERT_GE(tm.num_clients(), 1);
  EXPECT_EQ(tm.num_shards(), 1);
  std::uint64_t small_mallocs = 0;
  std::uint64_t large_mallocs = 0;
  std::uint64_t frees = 0;
  std::uint64_t bytes = 0;
  std::uint64_t class_ops = 0;
  for (int cl = 0; cl < tm.num_clients(); ++cl) {
    if (const TrafficCell* cell = tm.CellOrNull(cl, 0)) {
      small_mallocs += cell->mallocs;
      large_mallocs += cell->large_mallocs;
      frees += cell->frees;
      bytes += cell->bytes;
      for (const std::uint64_t n : cell->class_ops) {
        class_ops += n;
      }
    }
  }
  EXPECT_EQ(small_mallocs + large_mallocs, r.alloc_stats.mallocs);
  EXPECT_EQ(frees, r.alloc_stats.frees);
  EXPECT_EQ(bytes, r.alloc_stats.bytes_requested);
  EXPECT_EQ(class_ops, small_mallocs)
      << "every small malloc lands in exactly one size-class bucket";
  EXPECT_GT(tm.TotalSyncOps(), 0u);
}

TEST(FlightRecorder, SnapshotJsonValidatesAndCarriesTheSchema) {
  Machine machine(MachineConfig::Default(2));
  TelemetryConfig tc;
  tc.enabled = true;
  tc.recorder = true;
  tc.recorder_snapshot_interval = 100000;
  machine.EnableTelemetry(tc);
  const RunResult r = RunOffloaded(machine);

  EXPECT_FALSE(r.snapshots.empty()) << "the periodic cadence must have fired";
  ASSERT_EQ(r.final_snapshot.shards.size(), 1u);
  EXPECT_TRUE(r.final_snapshot.on_demand);

  const std::string dump = machine.telemetry().recorder().ToJson().Dump(2);
  std::string err;
  ASSERT_TRUE(JsonValidate(dump, &err)) << err;
  // Spot-check the schema consumers depend on (scripts/report.py, CI).
  for (const char* key :
       {"\"attribution\"", "\"traffic_matrix\"", "\"snapshots\"",
        "\"client_path_cycles\"", "\"total_cycles\"", "\"op_matrix\"",
        "\"cells\"", "\"spans\"", "\"bytes_live\"", "\"data_mapped_bytes\"",
        "\"internal_frag_pct\"", "\"external_frag_pct\"", "\"on_demand\""}) {
    EXPECT_NE(dump.find(key), std::string::npos) << key;
  }
  // Snapshot cycles are monotonically nondecreasing along the run.
  for (std::size_t i = 1; i < r.snapshots.size(); ++i) {
    EXPECT_LE(r.snapshots[i - 1].cycle, r.snapshots[i].cycle);
  }
  // Fragmentation percentages are percentages.
  for (const HeapShardSnapshot& sh : r.final_snapshot.shards) {
    EXPECT_GE(sh.internal_frag_pct, 0.0);
    EXPECT_LE(sh.internal_frag_pct, 100.0);
    EXPECT_GE(sh.external_frag_pct, 0.0);
    EXPECT_LE(sh.external_frag_pct, 100.0);
  }
}

TEST(FlightRecorder, SnapshotSourceUnregistersWithTheAllocator) {
  Machine machine(MachineConfig::Default(2));
  TelemetryConfig tc;
  tc.enabled = true;
  tc.recorder = true;
  machine.EnableTelemetry(tc);
  {
    NgxSystem sys = MakeNgxSystem(machine, NgxConfig::PaperPrototype(), 1);
    EXPECT_TRUE(machine.telemetry().recorder().has_snapshot_source());
  }
  // After the allocator dies, an on-demand snapshot must be a safe no-op
  // instead of a dangling call into the destroyed heap.
  EXPECT_FALSE(machine.telemetry().recorder().has_snapshot_source());
  EXPECT_EQ(machine.telemetry().recorder().TakeSnapshot(123, true), nullptr);
}

TEST(TelemetryDeterminism, TraceFromRealRunIsWellFormed) {
  Machine machine(MachineConfig::Default(2));
  TelemetryConfig tc;
  tc.enabled = true;
  tc.trace = true;
  machine.EnableTelemetry(tc);
  RunOffloaded(machine);
  const std::string trace = machine.telemetry().tracer().ToChromeTraceJson();
  std::string err;
  EXPECT_TRUE(JsonValidate(trace, &err)) << err;
  EXPECT_NE(trace.find("sync_request"), std::string::npos);
  const std::string metrics = machine.telemetry().metrics().ToJson().Dump();
  EXPECT_TRUE(JsonValidate(metrics, &err)) << err;
}

}  // namespace
}  // namespace ngx
