// Elastic heap fabric tests: span-directory bookkeeping, the kDonateSpan
// protocol end to end (ownership transfer, frees routed mid-donation),
// batched remote-free flushes, and the NGX_CHECK death tests that guard
// double donation.
#include <gtest/gtest.h>

#include <vector>

#include "src/alloc/layout.h"
#include "src/core/nextgen_malloc.h"
#include "src/core/span_directory.h"
#include "tests/test_util.h"

namespace ngx {
namespace {

constexpr std::uint64_t kSpan = 64 * 1024;
constexpr std::uint64_t kMiB = 1024 * 1024;

// ---- SpanDirectory bookkeeping units ----

TEST(SpanDirectory, InitialSlicesMatchTheOldDivide) {
  SpanDirectory d(kNgxHeapBase, 8 * kMiB, kSpan, 2);
  EXPECT_EQ(d.num_spans(), 128u);
  EXPECT_EQ(d.free_spans(0), 64u);
  EXPECT_EQ(d.free_spans(1), 64u);
  EXPECT_EQ(d.OwnerOfAddr(kNgxHeapBase), 0);
  EXPECT_EQ(d.OwnerOfAddr(kNgxHeapBase + 4 * kMiB - 1), 0);
  EXPECT_EQ(d.OwnerOfAddr(kNgxHeapBase + 4 * kMiB), 1);
  EXPECT_EQ(d.OwnerOfAddr(kNgxHeapBase + 8 * kMiB - 1), 1);
}

TEST(SpanDirectory, MapUnmapRecycleRoundTrip) {
  SpanDirectory d(kNgxHeapBase, 8 * kMiB, kSpan, 2);
  d.NoteMapped(0, kNgxHeapBase, 2 * kSpan);
  EXPECT_EQ(d.free_spans(0), 62u);
  // Partial unmap coverage must not recycle the still-live span.
  d.NoteUnmapped(0, kNgxHeapBase, kSpan / 2);
  EXPECT_EQ(d.free_spans(0), 62u);
  d.NoteUnmapped(0, kNgxHeapBase, 2 * kSpan);
  EXPECT_EQ(d.free_spans(0), 64u);
  // The recycled run is directly re-grantable.
  EXPECT_EQ(d.TakeRecycled(0, 2, kSpan), kNgxHeapBase);
  EXPECT_EQ(d.TakeRecycled(0, 1, kSpan), kNullAddr) << "pool drained";
  EXPECT_EQ(d.free_spans(0), 64u) << "taken spans return to the provider window";
}

TEST(SpanDirectory, TransferMovesOwnershipAndCounts) {
  SpanDirectory d(kNgxHeapBase, 8 * kMiB, kSpan, 2);
  const Addr span5 = kNgxHeapBase + 5 * kSpan;
  d.TransferRange(span5, 3, 0, 1);
  EXPECT_EQ(d.OwnerOfAddr(span5), 1);
  EXPECT_EQ(d.OwnerOfAddr(span5 + 3 * kSpan), 0);
  EXPECT_EQ(d.free_spans(0), 61u);
  EXPECT_EQ(d.free_spans(1), 67u);
  EXPECT_EQ(d.donated_out(0), 3u);
  EXPECT_EQ(d.donated_in(1), 3u);
  EXPECT_EQ(d.total_donated(), 3u);
}

TEST(SpanDirectoryDeath, DonatingAMappedSpanDies) {
  SpanDirectory d(kNgxHeapBase, 8 * kMiB, kSpan, 2);
  d.NoteMapped(0, kNgxHeapBase, kSpan);
  EXPECT_DEATH_IF_SUPPORTED(d.TransferSpan(0, 0, 1), "still mapped");
}

TEST(SpanDirectoryDeath, DoubleDonationDies) {
  SpanDirectory d(kNgxHeapBase, 8 * kMiB, kSpan, 2);
  d.TransferSpan(7, 0, 1);
  // Shard 0 no longer owns span 7; donating it again is the double-donation
  // bug the directory exists to catch.
  EXPECT_DEATH_IF_SUPPORTED(d.TransferSpan(7, 0, 1), "double donation");
}

// ---- End-to-end donation through the fabric ----

NgxConfig DonationConfig() {
  NgxConfig cfg;  // offloaded, async frees, segregated metadata
  cfg.num_shards = 2;
  cfg.hugepage_spans = false;   // 64 KiB grants, exhaustion reachable
  cfg.heap_window = 8 * kMiB;   // 4 MiB (64 spans) per shard
  cfg.span_donation = true;
  return cfg;
}

// Client 0 routes to shard 0 under static_by_client; retaining 16 KiB blocks
// (4 per span) exhausts shard 0's 64-span slice and forces donation.
TEST(SpanDonation, OwnershipTransferVisibleAfterDonation) {
  auto machine = MakeMachine(3);
  auto sys = MakeNgxSystem(*machine, DonationConfig());
  Env env(*machine, 0);
  std::vector<Addr> blocks;
  for (int i = 0; i < 280 && sys.allocator->directory()->donated_in(0) == 0; ++i) {
    const Addr a = sys.allocator->Malloc(env, 16 * 1024);
    ASSERT_NE(a, kNullAddr) << "donation must keep shard 0 serviceable, alloc " << i;
    blocks.push_back(a);
  }
  const SpanDirectory& d = *sys.allocator->directory();
  ASSERT_GT(d.donated_in(0), 0u) << "shard 0 never ran dry";
  EXPECT_EQ(d.donated_out(1), d.donated_in(0));
  EXPECT_EQ(sys.allocator->partition_oom_failures(), 0u);
  // Donated spans sit in shard 1's original slice but are owned by shard 0.
  bool saw_cross_slice = false;
  for (const Addr a : blocks) {
    if (a >= kNgxHeapBase + 4 * kMiB) {
      EXPECT_EQ(sys.allocator->ShardOfAddr(a), 0);
      saw_cross_slice = true;
    }
  }
  EXPECT_TRUE(saw_cross_slice) << "no block was carved from a donated span";
}

TEST(SpanDonation, FreeRoutedMidDonationLandsAtTheNewOwner) {
  auto machine = MakeMachine(3);
  auto sys = MakeNgxSystem(*machine, DonationConfig());
  Env env(*machine, 0);
  std::vector<Addr> blocks;
  for (int i = 0; i < 280 && sys.allocator->directory()->donated_in(0) == 0; ++i) {
    const Addr a = sys.allocator->Malloc(env, 16 * 1024);
    ASSERT_NE(a, kNullAddr);
    blocks.push_back(a);
  }
  ASSERT_GT(sys.allocator->directory()->donated_in(0), 0u);
  Addr donated_block = kNullAddr;
  for (const Addr a : blocks) {
    if (a >= kNgxHeapBase + 4 * kMiB) {
      donated_block = a;
    }
  }
  ASSERT_NE(donated_block, kNullAddr);
  // The address lies in shard 1's ORIGINAL slice; the free must go to the
  // span's current owner (shard 0) or the serving heap would corrupt
  // another shard's metadata.
  const std::uint64_t frees_before = sys.allocator->shard_stats(0).frees;
  sys.allocator->Free(env, donated_block);
  sys.fabric->DrainAll();
  EXPECT_EQ(sys.allocator->shard_stats(0).frees, frees_before + 1);
  EXPECT_EQ(sys.allocator->shard_stats(1).frees, 0u);
}

// Without donation the same skewed load must hit the partition wall (the
// contrast that makes the previous tests meaningful).
TEST(SpanDonation, WithoutDonationTheShardRunsDry) {
  auto machine = MakeMachine(3);
  NgxConfig cfg = DonationConfig();
  cfg.span_donation = false;
  auto sys = MakeNgxSystem(*machine, cfg);
  Env env(*machine, 0);
  bool saw_null = false;
  for (int i = 0; i < 280 && !saw_null; ++i) {
    saw_null = sys.allocator->Malloc(env, 16 * 1024) == kNullAddr;
  }
  EXPECT_TRUE(saw_null);
  EXPECT_GT(sys.allocator->partition_oom_failures(), 0u);
  EXPECT_EQ(sys.allocator->directory()->total_donated(), 0u);
}

// ---- Batched remote frees ----

TEST(BatchedFrees, FlushOnTeardownLosesNoFrees) {
  auto machine = MakeMachine(3);
  NgxConfig cfg;
  cfg.num_shards = 2;
  cfg.free_batch = 8;
  auto sys = MakeNgxSystem(*machine, cfg);
  Env env(*machine, 0);
  std::vector<Addr> blocks;
  for (int i = 0; i < 5; ++i) {
    blocks.push_back(sys.allocator->Malloc(env, 256));
    ASSERT_NE(blocks.back(), kNullAddr);
  }
  for (const Addr a : blocks) {
    sys.allocator->Free(env, a);
  }
  // 5 frees sit in the client-side buffer: nothing has reached the ring.
  EXPECT_EQ(sys.fabric->TotalStats().async_ops, 0u);
  EXPECT_EQ(sys.allocator->buffered_frees(), 5u);
  sys.allocator->Flush(env);
  sys.fabric->DrainAll();
  EXPECT_EQ(sys.allocator->stats().frees, 5u) << "teardown flush lost frees";
  EXPECT_EQ(sys.allocator->free_flushes(), 1u) << "one partial batch";
}

TEST(BatchedFrees, OneDoorbellPerBatch) {
  auto run = [](std::uint32_t free_batch) {
    auto machine = MakeMachine(2);
    NgxConfig cfg;
    cfg.free_batch = free_batch;
    auto sys = MakeNgxSystem(*machine, cfg);
    Env env(*machine, 0);
    std::vector<Addr> blocks;
    for (int i = 0; i < 64; ++i) {
      blocks.push_back(sys.allocator->Malloc(env, 256));
    }
    for (const Addr a : blocks) {
      sys.allocator->Free(env, a);
    }
    sys.allocator->Flush(env);
    sys.fabric->DrainAll();
    EXPECT_EQ(sys.allocator->stats().frees, 64u);
    return sys.fabric->TotalStats();
  };
  const OffloadEngineStats unbatched = run(1);
  const OffloadEngineStats batched = run(8);
  EXPECT_EQ(unbatched.ring_doorbells, 64u);
  EXPECT_EQ(batched.ring_doorbells, 8u) << "64 frees / 8 per doorbell";
  EXPECT_EQ(unbatched.async_ops, batched.async_ops) << "same entries, fewer doorbells";
}

// The clamp keeps least_loaded routing sane when drains outrun the fabric's
// own enqueue counter (entries pushed straight on an engine).
TEST(FabricQueueDepth, ClampsAtZeroWhenDrainsOutrunEnqueues) {
  auto machine = MakeMachine(3);
  NgxConfig cfg;
  cfg.num_shards = 2;
  auto sys = MakeNgxSystem(*machine, cfg);
  Env env(*machine, 0);
  const Addr a = sys.allocator->Malloc(env, 256);
  ASSERT_NE(a, kNullAddr);
  // Push the free on the owning engine directly, bypassing the fabric's
  // async_enqueued_ counter, then drain: async_ops now exceeds it.
  const int shard = sys.allocator->ShardOfAddr(a);
  sys.fabric->shard(shard).AsyncRequest(env, OffloadOp::kFree, a);
  sys.fabric->DrainAll();
  EXPECT_EQ(sys.fabric->QueueDepth(shard), 0u)
      << "unsigned underflow would report a huge depth";
}

// ---- Cluster-aware placement ----

TEST(Placement, PerClusterPutsServersWithTheirClients) {
  MachineConfig mc = MachineConfig::Default(8);
  mc.cluster_cores = 2;
  Machine machine(mc);
  NgxConfig cfg;
  cfg.num_shards = 2;
  cfg.placement = PlacementKind::kPerCluster;
  // Clients 0 and 3: static_by_client sends client 0 to shard 0 and client 3
  // to shard 1. Their clusters ({0,1} and {2,3}) each have one free core.
  const std::vector<int> cores = ChooseServerCores(machine, cfg, {0, 3});
  ASSERT_EQ(cores.size(), 2u);
  EXPECT_EQ(cores[0], 1) << "shard 0 lands in client 0's cluster";
  EXPECT_EQ(cores[1], 2) << "shard 1 lands in client 3's cluster";
  cfg.placement = PlacementKind::kContiguous;
  const std::vector<int> tail = ChooseServerCores(machine, cfg, {0, 3});
  EXPECT_EQ(tail, (std::vector<int>{6, 7}));
}

TEST(Placement, PerClusterFallsBackWhenTheClusterIsFull) {
  MachineConfig mc = MachineConfig::Default(4);
  mc.cluster_cores = 2;
  Machine machine(mc);
  NgxConfig cfg;
  cfg.num_shards = 1;
  cfg.placement = PlacementKind::kPerCluster;
  // Both cores of the majority cluster {0,1} are clients; the shard takes
  // the lowest free core elsewhere.
  const std::vector<int> cores = ChooseServerCores(machine, cfg, {0, 1});
  ASSERT_EQ(cores.size(), 1u);
  EXPECT_EQ(cores[0], 2);
}

TEST(Placement, SameClusterTransfersAreCheaper) {
  MachineConfig mc = MachineConfig::Default(4);
  mc.cluster_cores = 2;
  mc.same_cluster_transfer_latency = 30;
  Machine machine(mc);
  // Core 1 dirties a line; a same-cluster reader (core 0) pays less than a
  // cross-cluster reader (core 2) for the equivalent HITM service.
  const Addr line_a = kWorkloadBase;
  const Addr line_b = kWorkloadBase + 4096;
  machine.address_map().Add(Region{line_a, 4096, PageKind::kSmall4K, "t"});
  machine.address_map().Add(Region{line_b, 4096, PageKind::kSmall4K, "t"});
  Env w1(machine, 1);
  w1.Store<std::uint64_t>(line_a, 1);
  w1.Store<std::uint64_t>(line_b, 1);
  Env near(machine, 0);
  Env far(machine, 2);
  const std::uint64_t t_near0 = near.now();
  near.Load<std::uint64_t>(line_a);
  const std::uint64_t near_cost = near.now() - t_near0;
  const std::uint64_t t_far0 = far.now();
  far.Load<std::uint64_t>(line_b);
  const std::uint64_t far_cost = far.now() - t_far0;
  EXPECT_LT(near_cost, far_cost);
}

}  // namespace
}  // namespace ngx
