// Machine-level tests: hierarchy walks, coherence protocol, TLB charging,
// PMU attribution.
#include "src/sim/machine.h"

#include <gtest/gtest.h>

#include "src/sim/env.h"

namespace ngx {
namespace {

TEST(Machine, FirstAccessMissesEverywhereSecondHitsL1) {
  Machine m(MachineConfig::Default(1));
  Env env(m, 0);
  env.Load<std::uint64_t>(0x1000);
  EXPECT_EQ(m.core(0).pmu().llc_load_misses, 1u);
  EXPECT_EQ(m.core(0).pmu().l1d_load_misses, 1u);
  const std::uint64_t misses_before = m.core(0).pmu().l1d_load_misses;
  env.Load<std::uint64_t>(0x1008);  // same line
  EXPECT_EQ(m.core(0).pmu().l1d_load_misses, misses_before);
}

TEST(Machine, MultiLineAccessTouchesEachLine) {
  Machine m(MachineConfig::Default(1));
  Env env(m, 0);
  env.TouchRead(0x1000, 256);  // 4 lines
  EXPECT_EQ(m.core(0).pmu().loads, 4u);
  EXPECT_EQ(m.core(0).pmu().llc_load_misses, 4u);
}

TEST(Machine, StoreMakesCoreOwner) {
  Machine m(MachineConfig::Default(2));
  Env e0(m, 0);
  e0.Store<std::uint64_t>(0x1000, 1);
  EXPECT_EQ(m.OwnerOf(0x1000), 0);
  EXPECT_EQ(m.SharersOf(0x1000), 1u);
}

TEST(Machine, RemoteReadDowngradesOwner) {
  Machine m(MachineConfig::Default(2));
  Env e0(m, 0);
  Env e1(m, 1);
  e0.Store<std::uint64_t>(0x1000, 7);
  e1.Load<std::uint64_t>(0x1000);
  EXPECT_EQ(m.OwnerOf(0x1000), -1);
  EXPECT_EQ(m.SharersOf(0x1000), 0b11u);
  EXPECT_EQ(m.core(1).pmu().remote_hitm, 1u);
  EXPECT_EQ(m.core(1).pmu().llc_load_misses, 1u);
  EXPECT_EQ(e1.Load<std::uint64_t>(0x1000), 7u);  // data visible
}

TEST(Machine, RemoteWriteInvalidatesOwner) {
  Machine m(MachineConfig::Default(2));
  Env e0(m, 0);
  Env e1(m, 1);
  e0.Store<std::uint64_t>(0x1000, 7);
  e1.Store<std::uint64_t>(0x1000, 8);
  EXPECT_EQ(m.OwnerOf(0x1000), 1);
  EXPECT_EQ(m.SharersOf(0x1000), 0b10u);
  EXPECT_EQ(m.core(0).pmu().invalidations_received, 1u);
  EXPECT_EQ(e0.Load<std::uint64_t>(0x1000), 8u);
}

TEST(Machine, WriteToSharedLineInvalidatesSharers) {
  Machine m(MachineConfig::Default(3));
  Env e0(m, 0);
  Env e1(m, 1);
  Env e2(m, 2);
  e0.Load<std::uint64_t>(0x1000);
  e1.Load<std::uint64_t>(0x1000);
  e2.Load<std::uint64_t>(0x1000);
  EXPECT_EQ(m.SharersOf(0x1000), 0b111u);
  e0.Store<std::uint64_t>(0x1000, 1);
  EXPECT_EQ(m.OwnerOf(0x1000), 0);
  EXPECT_EQ(m.SharersOf(0x1000), 0b001u);
  EXPECT_GE(m.core(0).pmu().invalidations_sent, 2u);
}

TEST(Machine, AtMostOneOwnerInvariantUnderRandomTraffic) {
  Machine m(MachineConfig::Default(4));
  std::uint64_t x = 123456789;
  for (int i = 0; i < 5000; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    const int core = static_cast<int>((x >> 33) % 4);
    const Addr addr = 0x1000 + ((x >> 16) % 64) * 64;
    Env env(m, core);
    if ((x >> 40) & 1) {
      env.Store<std::uint64_t>(addr, x);
    } else {
      env.Load<std::uint64_t>(addr);
    }
    const int owner = m.OwnerOf(addr);
    if (owner != -1) {
      EXPECT_EQ(m.SharersOf(addr), 1u << owner) << "owner must be the only sharer";
    }
  }
}

TEST(Machine, CoherentDataUnderRandomTraffic) {
  // The machine model must never lose stores: SimMemory always holds the
  // latest value regardless of which core wrote it.
  Machine m(MachineConfig::Default(4));
  std::uint64_t shadow[16] = {};
  std::uint64_t x = 42;
  for (int i = 0; i < 4000; ++i) {
    x = x * 2862933555777941757ull + 3037000493ull;
    const int core = static_cast<int>(x % 4);
    const std::size_t slot = (x >> 8) % 16;
    const Addr addr = 0x9000 + slot * 64;
    Env env(m, core);
    if ((x >> 20) & 1) {
      shadow[slot] = x;
      env.Store<std::uint64_t>(addr, x);
    } else {
      ASSERT_EQ(env.Load<std::uint64_t>(addr), shadow[slot]);
    }
  }
}

TEST(Machine, AtomicRmwCostsMoreThanPlainStore) {
  Machine ma(MachineConfig::Default(1));
  Machine mb(MachineConfig::Default(1));
  Env ea(ma, 0);
  Env eb(mb, 0);
  // Warm both lines identically.
  ea.Store<std::uint64_t>(0x1000, 1);
  eb.Store<std::uint64_t>(0x1000, 1);
  const std::uint64_t t0a = ma.core(0).now();
  const std::uint64_t t0b = mb.core(0).now();
  ea.Store<std::uint64_t>(0x1000, 2);
  eb.AtomicFetchAdd(0x1000, 1);
  const std::uint64_t store_cost = ma.core(0).now() - t0a;
  const std::uint64_t rmw_cost = mb.core(0).now() - t0b;
  EXPECT_GE(rmw_cost, store_cost + ma.config().atomic_rmw_latency / 2);
}

TEST(Machine, AtomicsPreserveValueSemantics) {
  Machine m(MachineConfig::Default(2));
  Env e0(m, 0);
  Env e1(m, 1);
  EXPECT_EQ(e0.AtomicFetchAdd(0x2000, 5), 0u);
  EXPECT_EQ(e1.AtomicFetchAdd(0x2000, 3), 5u);
  EXPECT_EQ(e0.AtomicExchange(0x2000, 100), 8u);
  EXPECT_TRUE(e1.AtomicCompareExchange(0x2000, 100, 7));
  EXPECT_FALSE(e1.AtomicCompareExchange(0x2000, 100, 9));
  EXPECT_EQ(e0.Load<std::uint64_t>(0x2000), 7u);
}

TEST(Machine, TlbMissChargedOncePerPageStream) {
  Machine m(MachineConfig::Default(1));
  Env env(m, 0);
  // 64 distinct 4 KiB pages: each first touch walks.
  for (int i = 0; i < 64; ++i) {
    env.Load<std::uint64_t>(0x10'0000 + static_cast<Addr>(i) * 4096);
  }
  EXPECT_EQ(m.core(0).pmu().dtlb_load_misses, 64u);
  // Re-touch: all in L1 TLB now.
  const std::uint64_t walks = m.core(0).pmu().dtlb_load_misses;
  for (int i = 0; i < 64; ++i) {
    env.Load<std::uint64_t>(0x10'0000 + static_cast<Addr>(i) * 4096);
  }
  EXPECT_EQ(m.core(0).pmu().dtlb_load_misses, walks);
}

TEST(Machine, HugePagesReduceTlbMisses) {
  MachineConfig cfg = MachineConfig::Default(1);
  Machine m(cfg);
  // Map a huge-page region and a small-page region of equal size.
  m.address_map().Add(Region{0x1000'0000, 64ull << 20, PageKind::kHuge2M, "huge"});
  m.address_map().Add(Region{0x8000'0000, 64ull << 20, PageKind::kSmall4K, "small"});
  Env env(m, 0);
  const int kPages = 512;  // touch one line every 128 KiB over 64 MiB
  for (int i = 0; i < kPages; ++i) {
    env.Load<std::uint64_t>(0x1000'0000 + static_cast<Addr>(i) * 128 * 1024);
  }
  const std::uint64_t huge_walks = m.core(0).pmu().dtlb_load_misses;
  for (int i = 0; i < kPages; ++i) {
    env.Load<std::uint64_t>(0x8000'0000 + static_cast<Addr>(i) * 128 * 1024);
  }
  const std::uint64_t small_walks = m.core(0).pmu().dtlb_load_misses - huge_walks;
  EXPECT_LT(huge_walks, small_walks / 4) << "2 MiB pages must cut walks drastically";
}

TEST(Machine, InOrderCorePaysMoreThanOoO) {
  MachineConfig cfg = MachineConfig::Default(2);
  cfg.cores[1] = CoreConfig::InOrder();
  Machine m(cfg);
  Env ooo(m, 0);
  Env ino(m, 1);
  // Same miss-heavy streaming pattern on both cores (disjoint addresses).
  for (int i = 0; i < 200; ++i) {
    ooo.Load<std::uint64_t>(0x100'0000 + static_cast<Addr>(i) * 64);
    ino.Load<std::uint64_t>(0x200'0000 + static_cast<Addr>(i) * 64);
  }
  EXPECT_LT(m.core(0).now(), m.core(1).now());
}

TEST(Machine, AllocScopeAttributesCycles) {
  Machine m(MachineConfig::Default(1));
  Env env(m, 0);
  env.Work(100);
  {
    AllocScope scope(env);
    env.Work(50);
    env.Load<std::uint64_t>(0x1000);
  }
  env.Work(100);
  const PmuCounters& pmu = m.core(0).pmu();
  EXPECT_EQ(pmu.alloc_instructions, 51u);
  EXPECT_GT(pmu.alloc_cycles, 0u);
  EXPECT_LT(pmu.alloc_cycles, pmu.cycles);
}

TEST(Machine, TotalPmuSumsCores) {
  Machine m(MachineConfig::Default(2));
  Env e0(m, 0);
  Env e1(m, 1);
  e0.Work(10);
  e1.Work(20);
  EXPECT_EQ(m.TotalPmu().instructions, 30u);
}

}  // namespace
}  // namespace ngx
