// Watermark span rebalancing + return protocol tests (DESIGN.md §8):
//
//  * a seeded randomized lifecycle stress harness driving grant / unmap /
//    take / donate / return steps against SpanDirectory with a host-side
//    shadow model and an O(1)-amortized invariant auditor (every span has
//    exactly one owner, recycled runs are disjoint, granted spans are never
//    donated, returns only target fully-recycled away spans), swept over
//    8 seeds x {2, 4, 8} shards;
//  * the same invariants audited after a randomized malloc/free stress run
//    through the real fabric with watermarks armed;
//  * NGX_CHECK death tests for double-return and returning a mapped span;
//  * unit tests for the kRequestSpans / kOfferSpans / kReturnSpan wire
//    protocol driven directly through the fabric;
//  * end-to-end watermark behaviour: proactive refill keeps the inline
//    kDonateSpan fallback off the malloc path, and the return protocol
//    restores the pre-burst per-shard free-span split;
//  * a regression test pinning TakeRecycled's next-fit cursor to
//    amortized-linear scanning on a fragmented 64Ki-span directory.
#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>
#include <utility>
#include <vector>

#include "src/alloc/layout.h"
#include "src/core/nextgen_malloc.h"
#include "src/core/span_directory.h"
#include "src/sim/scheduler.h"
#include "src/workload/rng.h"
#include "tests/test_util.h"

namespace ngx {
namespace {

constexpr std::uint64_t kSpan = 64 * 1024;
constexpr std::uint64_t kMiB = 1024 * 1024;

using SpanState = SpanDirectory::SpanState;

// Audits a directory against first principles (no shadow needed): per-shard
// free/away tallies recomputed from the per-span accessors, recycled runs
// disjoint and consistent with the per-span state, and symmetric
// donated/returned totals. Used after fabric-level stress where the span
// traffic is driven by the real allocator.
void AuditDirectoryConsistency(const SpanDirectory& d) {
  const std::uint64_t n = d.num_spans();
  const int shards = d.num_shards();
  std::vector<std::uint64_t> free_count(static_cast<std::size_t>(shards), 0);
  std::vector<std::uint64_t> away_count(static_cast<std::size_t>(shards), 0);
  std::vector<std::uint64_t> recycled_count(static_cast<std::size_t>(shards), 0);
  for (std::uint64_t s = 0; s < n; ++s) {
    const int owner = d.OwnerOfSpan(s);
    ASSERT_GE(owner, 0);
    ASSERT_LT(owner, shards) << "span " << s << " has no valid owner";
    const SpanState st = d.StateOfSpan(s);
    if (st != SpanState::kGranted) {
      ++free_count[static_cast<std::size_t>(owner)];
    }
    if (st == SpanState::kRecycled) {
      ++recycled_count[static_cast<std::size_t>(owner)];
    }
    if (d.HomeOfSpan(s) != owner) {
      ++away_count[static_cast<std::size_t>(owner)];
    }
  }
  std::vector<bool> covered(n, false);
  std::uint64_t donated_out_sum = 0;
  std::uint64_t donated_in_sum = 0;
  std::uint64_t returned_out_sum = 0;
  std::uint64_t returned_in_sum = 0;
  for (int shard = 0; shard < shards; ++shard) {
    EXPECT_EQ(d.free_spans(shard), free_count[static_cast<std::size_t>(shard)])
        << "free-span tally diverged for shard " << shard;
    EXPECT_EQ(d.away_spans(shard), away_count[static_cast<std::size_t>(shard)])
        << "away-span tally diverged for shard " << shard;
    std::uint64_t in_runs = 0;
    for (const SpanDirectory::SpanRun& r : d.RecycledRuns(shard)) {
      ASSERT_GT(r.count, 0u);
      ASSERT_LE(r.first + r.count, n);
      for (std::uint64_t s = r.first; s < r.first + r.count; ++s) {
        ASSERT_FALSE(covered[s]) << "span " << s << " appears in two recycled runs";
        covered[s] = true;
        ASSERT_EQ(d.OwnerOfSpan(s), shard) << "recycled run holds a foreign span";
        ASSERT_EQ(d.StateOfSpan(s), SpanState::kRecycled)
            << "recycled run holds a non-recycled span";
      }
      in_runs += r.count;
    }
    EXPECT_EQ(in_runs, recycled_count[static_cast<std::size_t>(shard)])
        << "recycled pool does not cover every recycled span of shard " << shard;
    donated_out_sum += d.donated_out(shard);
    donated_in_sum += d.donated_in(shard);
    returned_out_sum += d.returned_out(shard);
    returned_in_sum += d.returned_in(shard);
  }
  EXPECT_EQ(donated_out_sum, donated_in_sum);
  EXPECT_EQ(returned_out_sum, returned_in_sum);
  EXPECT_EQ(d.total_donated(), donated_out_sum);
  EXPECT_EQ(d.total_returned(), returned_out_sum);
  EXPECT_LE(d.total_returned(), d.total_donated())
      << "only spans that left home via donation can be returned";
}

// ---- Randomized lifecycle stress against the bare directory ----
//
// Drives the directory with random lifecycle steps while mirroring every
// move in a host-side shadow model. The auditor is O(1)-amortized: each
// step checks only the tallies of the shards it touched, and a full
// O(num_spans) sweep runs every kSweepEvery steps plus once at the end.
class DirectoryStress {
 public:
  static constexpr std::uint64_t kSpansPerShard = 96;
  static constexpr std::uint32_t kSweepEvery = 512;

  DirectoryStress(std::uint64_t seed, int shards)
      : rng_(seed),
        shards_(shards),
        d_(kNgxHeapBase, static_cast<std::uint64_t>(shards) * kSpansPerShard * kSpan, kSpan,
           shards) {
    const std::uint64_t n = d_.num_spans();
    owner_.resize(n);
    home_.resize(n);
    state_.assign(n, SpanState::kUngranted);
    for (std::uint64_t s = 0; s < n; ++s) {
      owner_[s] = static_cast<int>(s / kSpansPerShard);
      home_[s] = owner_[s];
    }
    free_.assign(static_cast<std::size_t>(shards), kSpansPerShard);
    away_.assign(static_cast<std::size_t>(shards), 0);
    donated_out_.assign(static_cast<std::size_t>(shards), 0);
    donated_in_.assign(static_cast<std::size_t>(shards), 0);
    returned_out_.assign(static_cast<std::size_t>(shards), 0);
    returned_in_.assign(static_cast<std::size_t>(shards), 0);
  }

  void Run(std::uint32_t steps) {
    for (std::uint32_t i = 0; i < steps && !::testing::Test::HasFatalFailure(); ++i) {
      Step();
      if ((i + 1) % kSweepEvery == 0) {
        FullSweep();
      }
    }
    FullSweep();
  }

 private:
  void Step() {
    const int s = static_cast<int>(rng_.Below(static_cast<std::uint64_t>(shards_)));
    const std::uint64_t pick = rng_.Below(100);
    if (pick < 30) {
      StepGrant(s);
    } else if (pick < 55) {
      StepUnmap(s);
    } else if (pick < 70) {
      StepTake(s);
    } else if (pick < 85) {
      StepDonate(s);
    } else {
      StepReturn(s);
    }
  }

  // Finds a run of 1..max_len spans owned by `s` whose every span satisfies
  // `pred`, probing from a random start. Returns {first, 0} when none exists.
  template <typename Pred>
  std::pair<std::uint64_t, std::uint64_t> FindRun(int s, std::uint64_t max_len, Pred pred) {
    const std::uint64_t n = owner_.size();
    const std::uint64_t start = rng_.Below(n);
    for (std::uint64_t k = 0; k < n; ++k) {
      const std::uint64_t i = start + k < n ? start + k : start + k - n;
      if (owner_[i] != s || !pred(i)) {
        continue;
      }
      std::uint64_t len = 1;
      while (len < max_len && i + len < n && owner_[i + len] == s && pred(i + len)) {
        ++len;
      }
      return {i, len};
    }
    return {0, 0};
  }

  void StepGrant(int s) {
    const auto [first, len] =
        FindRun(s, 1 + rng_.Below(3), [&](std::uint64_t i) { return state_[i] != SpanState::kGranted; });
    if (len == 0) {
      return;
    }
    d_.NoteMapped(s, d_.AddrOfSpan(first), len * kSpan);
    for (std::uint64_t i = first; i < first + len; ++i) {
      state_[i] = SpanState::kGranted;
    }
    free_[static_cast<std::size_t>(s)] -= len;
    AuditShard(s);
  }

  void StepUnmap(int s) {
    const auto [first, len] =
        FindRun(s, 1 + rng_.Below(3), [&](std::uint64_t i) { return state_[i] == SpanState::kGranted; });
    if (len == 0) {
      return;
    }
    d_.NoteUnmapped(s, d_.AddrOfSpan(first), len * kSpan);
    for (std::uint64_t i = first; i < first + len; ++i) {
      state_[i] = SpanState::kRecycled;
    }
    free_[static_cast<std::size_t>(s)] += len;
    AuditShard(s);
  }

  void StepTake(int s) {
    const std::uint64_t n = 1ull << rng_.Below(3);  // 1, 2 or 4 spans
    const Addr base = d_.TakeRecycled(s, n, kSpan);
    if (base == kNullAddr) {
      return;
    }
    const std::uint64_t first = (base - kNgxHeapBase) / kSpan;
    for (std::uint64_t i = first; i < first + n; ++i) {
      ASSERT_EQ(owner_[i], s) << "TakeRecycled handed out a foreign span";
      ASSERT_EQ(state_[i], SpanState::kRecycled) << "TakeRecycled handed out a live span";
      state_[i] = SpanState::kUngranted;  // back inside the provider window
    }
    AuditShard(s);  // free count must NOT change: the spans stay owned
  }

  void StepDonate(int s) {
    if (shards_ < 2) {
      return;
    }
    int t = static_cast<int>(rng_.Below(static_cast<std::uint64_t>(shards_ - 1)));
    if (t >= s) {
      ++t;
    }
    // Granted spans are never donated: the driver only ever offers free runs,
    // and the death tests below pin the directory's enforcement of the rule.
    const auto [first, len] =
        FindRun(s, 1 + rng_.Below(4), [&](std::uint64_t i) { return state_[i] != SpanState::kGranted; });
    if (len == 0) {
      return;
    }
    d_.TransferRange(d_.AddrOfSpan(first), len, s, t);
    for (std::uint64_t i = first; i < first + len; ++i) {
      state_[i] = SpanState::kUngranted;  // recycled spans are lifted out of the pool
      owner_[i] = t;
      if (home_[i] != s) {
        --away_[static_cast<std::size_t>(s)];
      }
      if (home_[i] != t) {
        ++away_[static_cast<std::size_t>(t)];
      }
    }
    free_[static_cast<std::size_t>(s)] -= len;
    free_[static_cast<std::size_t>(t)] += len;
    donated_out_[static_cast<std::size_t>(s)] += len;
    donated_in_[static_cast<std::size_t>(t)] += len;
    AuditShard(s);
    AuditShard(t);
  }

  void StepReturn(int s) {
    int home = -1;
    std::uint64_t n = 0;
    const Addr base = d_.FindRecycledAwayRun(s, 1, 1 + rng_.Below(4), kSpan, &home, &n);
    if (base == kNullAddr) {
      return;
    }
    const std::uint64_t first = (base - kNgxHeapBase) / kSpan;
    for (std::uint64_t i = first; i < first + n; ++i) {
      ASSERT_EQ(owner_[i], s) << "returnable run not owned by the holder";
      ASSERT_EQ(state_[i], SpanState::kRecycled) << "return targeted a non-recycled span";
      ASSERT_EQ(home_[i], home) << "returnable run mixes home shards";
      ASSERT_NE(home_[i], s) << "returnable run is already home";
    }
    ASSERT_EQ(d_.ReturnRange(base, n, s), home);
    for (std::uint64_t i = first; i < first + n; ++i) {
      state_[i] = SpanState::kUngranted;
      owner_[i] = home;
    }
    away_[static_cast<std::size_t>(s)] -= n;
    free_[static_cast<std::size_t>(s)] -= n;
    free_[static_cast<std::size_t>(home)] += n;
    returned_out_[static_cast<std::size_t>(s)] += n;
    returned_in_[static_cast<std::size_t>(home)] += n;
    AuditShard(s);
    AuditShard(home);
  }

  // O(1) per-step audit: only the touched shard's tallies.
  void AuditShard(int s) {
    const auto i = static_cast<std::size_t>(s);
    ASSERT_EQ(d_.free_spans(s), free_[i]) << "free-span tally diverged, shard " << s;
    ASSERT_EQ(d_.away_spans(s), away_[i]) << "away-span tally diverged, shard " << s;
    ASSERT_EQ(d_.donated_out(s), donated_out_[i]);
    ASSERT_EQ(d_.donated_in(s), donated_in_[i]);
    ASSERT_EQ(d_.returned_out(s), returned_out_[i]);
    ASSERT_EQ(d_.returned_in(s), returned_in_[i]);
  }

  // Full O(num_spans) sweep: every span has exactly the shadow's owner, home
  // and state, and every shard's recycled pool covers exactly its recycled
  // spans with disjoint runs.
  void FullSweep() {
    const std::uint64_t n = d_.num_spans();
    for (std::uint64_t s = 0; s < n; ++s) {
      ASSERT_EQ(d_.OwnerOfSpan(s), owner_[s]) << "owner diverged, span " << s;
      ASSERT_EQ(d_.HomeOfSpan(s), home_[s]) << "home must never change, span " << s;
      ASSERT_EQ(d_.StateOfSpan(s), state_[s]) << "state diverged, span " << s;
    }
    AuditDirectoryConsistency(d_);
    for (int s = 0; s < shards_; ++s) {
      AuditShard(s);
    }
  }

  Rng rng_;
  int shards_;
  SpanDirectory d_;
  // Shadow model.
  std::vector<int> owner_;
  std::vector<int> home_;
  std::vector<SpanState> state_;
  std::vector<std::uint64_t> free_;
  std::vector<std::uint64_t> away_;
  std::vector<std::uint64_t> donated_out_;
  std::vector<std::uint64_t> donated_in_;
  std::vector<std::uint64_t> returned_out_;
  std::vector<std::uint64_t> returned_in_;
};

class SpanRebalanceStress
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(SpanRebalanceStress, RandomLifecycleKeepsEveryInvariant) {
  const auto [seed, shards] = GetParam();
  DirectoryStress stress(seed, shards);
  stress.Run(12000);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsByShards, SpanRebalanceStress,
    ::testing::Combine(::testing::Values<std::uint64_t>(1, 2, 3, 42, 99, 12345, 0xdeadbeef,
                                                        0xfeedface),
                       ::testing::Values(2, 4, 8)),
    [](const ::testing::TestParamInfo<std::tuple<std::uint64_t, int>>& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_shards" +
             std::to_string(std::get<1>(info.param));
    });

// ---- Randomized stress through the real fabric ----

NgxConfig RebalanceConfig(int shards) {
  NgxConfig cfg;  // offloaded, async frees, segregated metadata
  cfg.num_shards = shards;
  cfg.hugepage_spans = false;  // 64 KiB grants, watermark traffic reachable
  cfg.heap_window = static_cast<std::uint64_t>(shards) * 4 * kMiB;  // 64 spans/shard
  cfg.span_donation = true;
  cfg.span_low_mark = 8;
  cfg.span_high_mark = 16;
  return cfg;
}

class SpanRebalanceFabricStress
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

// Two clients hammer a watermarked fabric with a size mix whose large tail
// (> the 32 KiB small-class ceiling) keeps spans mapping and unmapping, so
// refills, offers and returns all fire while the shadow heap checks block
// integrity. At the end, every directory invariant must still hold and the
// allocator must balance its books.
TEST_P(SpanRebalanceFabricStress, RandomMallocFreeChurnKeepsTheDirectoryConsistent) {
  const auto [seed, shards] = GetParam();
  auto machine = MakeMachine(shards + 2);
  auto sys = MakeNgxSystem(*machine, RebalanceConfig(shards));
  ASSERT_TRUE(sys.allocator->rebalancing());
  ShadowHeapExerciser ex(*machine, *sys.allocator, seed);
  for (int round = 0; round < 2; ++round) {
    for (int core = 0; core < 2; ++core) {
      ex.Run(core, 500, 40, 64, 48 * 1024);
      if (::testing::Test::HasFatalFailure()) {
        return;
      }
    }
  }
  ex.FreeAll(0);
  for (int core = 0; core < 2; ++core) {
    Env env(*machine, core);
    sys.allocator->Flush(env);
  }
  sys.fabric->DrainAll();
  AuditDirectoryConsistency(*sys.allocator->directory());
  const AllocatorStats stats = sys.allocator->stats();
  // Shard-level retries on the inline donation path count a failed attempt
  // in both mallocs and oom_failures; every USER malloc must still balance
  // against a free, and none may have failed outright.
  EXPECT_EQ(stats.mallocs - stats.oom_failures, stats.frees);
  EXPECT_EQ(stats.bytes_live, 0u);
  EXPECT_EQ(sys.allocator->partition_oom_failures(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsByShards, SpanRebalanceFabricStress,
    ::testing::Combine(::testing::Values<std::uint64_t>(1, 2, 3, 42, 99, 12345, 0xdeadbeef,
                                                        0xfeedface),
                       ::testing::Values(2, 4, 8)),
    [](const ::testing::TestParamInfo<std::tuple<std::uint64_t, int>>& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_shards" +
             std::to_string(std::get<1>(info.param));
    });

// ---- The same stress under heterogeneous per-tenant traits ----
//
// The traits layer (DESIGN.md §15) must not bend a single span-economy
// invariant: with the two clients running OPPOSITE contracts -- client 0
// low-latency (unbatched frees, latency lane) and client 1 throughput
// (deep free batches, bulk lane, its home shard's watermarks widened) --
// plus lane admission on, the directory auditor and the shadow-heap
// exerciser must hold exactly as they do for the homogeneous sweep, and
// the books must still balance after the final flush.

NgxConfig TenantRebalanceConfig(int shards) {
  NgxConfig cfg = RebalanceConfig(shards);
  cfg.qos_lanes = true;
  cfg.lane_quantum = 8;
  TenantSpec fe;
  fe.name = "frontend";
  fe.traits = MakeTenantTraits("low_latency");
  fe.cores = {0};
  TenantSpec an;
  an.name = "analytics";
  an.traits = MakeTenantTraits("throughput");
  an.traits.free_batch = 8;
  // Widen the watermark band of the shard this tenant homes on (its static
  // route, shard 1): heterogeneous per-shard marks must rebalance cleanly
  // against the global band on every other shard.
  an.traits.span_low_mark = 4;
  an.traits.span_high_mark = 24;
  an.cores = {1};
  cfg.tenants = {fe, an};
  return cfg;
}

class TenantSpanRebalanceFabricStress
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(TenantSpanRebalanceFabricStress, HeterogeneousTraitsKeepTheDirectoryConsistent) {
  const auto [seed, shards] = GetParam();
  auto machine = MakeMachine(shards + 2);
  auto sys = MakeNgxSystem(*machine, TenantRebalanceConfig(shards));
  ASSERT_TRUE(sys.allocator->rebalancing());
  ASSERT_EQ(sys.allocator->core_lane(0), QosLane::kLatency);
  ASSERT_EQ(sys.allocator->core_lane(1), QosLane::kBulk);
  ASSERT_EQ(sys.allocator->shard_low_mark(1), 4u);
  ShadowHeapExerciser ex(*machine, *sys.allocator, seed);
  for (int round = 0; round < 2; ++round) {
    for (int core = 0; core < 2; ++core) {
      ex.Run(core, 500, 40, 64, 48 * 1024);
      if (::testing::Test::HasFatalFailure()) {
        return;
      }
    }
  }
  ex.FreeAll(0);
  for (int core = 0; core < 2; ++core) {
    Env env(*machine, core);
    sys.allocator->Flush(env);
  }
  sys.fabric->DrainAll();
  AuditDirectoryConsistency(*sys.allocator->directory());
  const AllocatorStats stats = sys.allocator->stats();
  EXPECT_EQ(stats.mallocs - stats.oom_failures, stats.frees);
  EXPECT_EQ(stats.bytes_live, 0u);
  EXPECT_EQ(sys.allocator->partition_oom_failures(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsByShards, TenantSpanRebalanceFabricStress,
    ::testing::Combine(::testing::Values<std::uint64_t>(1, 2, 3, 42, 99, 12345, 0xdeadbeef,
                                                        0xfeedface),
                       ::testing::Values(2, 4, 8)),
    [](const ::testing::TestParamInfo<std::tuple<std::uint64_t, int>>& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_shards" +
             std::to_string(std::get<1>(info.param));
    });

// ---- Death tests: the return protocol's fatal bookkeeping guards ----

TEST(SpanRebalanceDeath, DoubleReturnDies) {
  SpanDirectory d(kNgxHeapBase, 8 * kMiB, kSpan, 2);
  const Addr away = d.AddrOfSpan(70);  // shard 1's slice
  d.TransferRange(away, 1, 1, 0);
  d.NoteMapped(0, away, kSpan);
  d.NoteUnmapped(0, away, kSpan);
  EXPECT_EQ(d.ReturnRange(away, 1, 0), 1);
  // Shard 0 no longer owns the span; returning it again is the double-return
  // bug the directory exists to catch.
  EXPECT_DEATH_IF_SUPPORTED(d.ReturnRange(away, 1, 0), "double return");
}

TEST(SpanRebalanceDeath, ReturningAMappedSpanDies) {
  SpanDirectory d(kNgxHeapBase, 8 * kMiB, kSpan, 2);
  const Addr away = d.AddrOfSpan(70);
  d.TransferRange(away, 1, 1, 0);
  d.NoteMapped(0, away, kSpan);
  // The span still backs live mappings: flowing it home would double-account
  // the address range between two providers.
  EXPECT_DEATH_IF_SUPPORTED(d.ReturnRange(away, 1, 0), "fully-recycled");
}

TEST(SpanRebalanceDeath, ReturningAHomeSpanDies) {
  SpanDirectory d(kNgxHeapBase, 8 * kMiB, kSpan, 2);
  d.NoteMapped(0, kNgxHeapBase, kSpan);
  d.NoteUnmapped(0, kNgxHeapBase, kSpan);
  EXPECT_DEATH_IF_SUPPORTED(d.ReturnRange(kNgxHeapBase, 1, 0), "already home");
}

// ---- Wire-protocol units: the three new fabric ops driven directly ----

NgxConfig DonationOnlyConfig() {
  NgxConfig cfg;
  cfg.num_shards = 2;
  cfg.hugepage_spans = false;
  cfg.heap_window = 8 * kMiB;  // 64 spans per shard
  cfg.span_donation = true;    // watermarks off: no hook interference
  return cfg;
}

TEST(SpanRebalanceProtocol, RequestSpansCarvesFromTheDonor) {
  auto machine = MakeMachine(3);
  auto sys = MakeNgxSystem(*machine, DonationOnlyConfig());
  Env env(*machine, 0);
  // arg = (want << 8) | requester: shard 0 asks shard 1 for 2 spans.
  const std::uint64_t resp =
      sys.fabric->SyncRequest(env, 1, OffloadOp::kRequestSpans, (2ull << 8) | 0);
  ASSERT_NE(resp, kNullAddr);
  const std::uint64_t got = resp & 0xffff;
  const Addr base = resp & ~0xffffull;
  ASSERT_GE(got, 2u);
  const SpanDirectory& d = *sys.allocator->directory();
  EXPECT_EQ(d.OwnerOfAddr(base), 0) << "carved spans must change owner donor-side";
  EXPECT_EQ(d.HomeOfSpan(d.SpanOfAddr(base)), 1) << "home never moves";
  EXPECT_EQ(d.donated_out(1), got);
  EXPECT_EQ(d.donated_in(0), got);
  EXPECT_EQ(d.away_spans(0), got);
  AuditDirectoryConsistency(d);
}

TEST(SpanRebalanceProtocol, OfferSpansGraftsIntoTheRecipientProvider) {
  auto machine = MakeMachine(3);
  auto sys = MakeNgxSystem(*machine, DonationOnlyConfig());
  SpanDirectory& d = *sys.allocator->directory();
  // Sender side of kOfferSpans: carve 2 spans off shard 1's window and move
  // ownership before the message, exactly like TryOfferSurplus does.
  const Addr base = sys.allocator->heap(1).span_provider().TrimTail(2 * kSpan, kSpan);
  ASSERT_NE(base, kNullAddr);
  d.TransferRange(base, 2, 1, 0);
  const std::uint64_t before = sys.allocator->heap(0).span_provider().FreeBytes();
  Env env(*machine, 0);
  // arg = base | nspans: span bases are 64 KiB-aligned, the low 16 bits are free.
  EXPECT_EQ(sys.fabric->SyncRequest(env, 0, OffloadOp::kOfferSpans, base | 2), 1u);
  EXPECT_EQ(sys.allocator->heap(0).span_provider().FreeBytes(), before + 2 * kSpan)
      << "the recipient must graft the offered range onto its provider";
  AuditDirectoryConsistency(d);
}

TEST(SpanRebalanceProtocol, ReturnSpanGraftsAtTheHomeShard) {
  auto machine = MakeMachine(3);
  auto sys = MakeNgxSystem(*machine, DonationOnlyConfig());
  SpanDirectory& d = *sys.allocator->directory();
  // Manufacture a recycled away run: 2 of shard 1's spans live at shard 0,
  // get mapped there and fully recycled again.
  const Addr base = sys.allocator->heap(1).span_provider().TrimTail(2 * kSpan, kSpan);
  ASSERT_NE(base, kNullAddr);
  d.TransferRange(base, 2, 1, 0);
  d.NoteMapped(0, base, 2 * kSpan);
  d.NoteUnmapped(0, base, 2 * kSpan);
  int home = -1;
  std::uint64_t n = 0;
  ASSERT_EQ(d.FindRecycledAwayRun(0, 1, 16, kSpan, &home, &n), base);
  EXPECT_EQ(home, 1);
  EXPECT_EQ(n, 2u);
  // Sender side first (ownership moves before the message), then the wire op
  // grafts the range at home.
  ASSERT_EQ(d.ReturnRange(base, n, 0), home);
  const std::uint64_t before = sys.allocator->heap(1).span_provider().FreeBytes();
  Env env(*machine, 0);
  EXPECT_EQ(sys.fabric->SyncRequest(env, home, OffloadOp::kReturnSpan, base | n), 1u);
  EXPECT_EQ(sys.allocator->heap(1).span_provider().FreeBytes(), before + n * kSpan);
  EXPECT_EQ(d.away_spans(0), 0u);
  EXPECT_EQ(d.returned_out(0), 2u);
  EXPECT_EQ(d.returned_in(1), 2u);
  EXPECT_EQ(d.total_returned(), 2u);
  AuditDirectoryConsistency(d);
}

// ---- End-to-end watermark behaviour ----

// Client 0 routes to shard 0 under static_by_client; a run of 48 KiB blocks
// (one span each, above the small-class ceiling) outgrows shard 0's 64-span
// slice. With watermarks armed the background refill must stay ahead of
// demand: the inline kDonateSpan fallback never fires on the malloc path.
TEST(SpanRebalanceWatermark, ProactiveRefillKeepsTheInlineFallbackIdle) {
  auto machine = MakeMachine(3);
  NgxConfig cfg = DonationOnlyConfig();
  cfg.span_low_mark = 8;
  cfg.span_high_mark = 16;
  auto sys = MakeNgxSystem(*machine, cfg);
  ASSERT_TRUE(sys.allocator->rebalancing());
  Env env(*machine, 0);
  std::vector<Addr> blocks;
  for (int i = 0; i < 100; ++i) {
    const Addr a = sys.allocator->Malloc(env, 48 * 1024);
    ASSERT_NE(a, kNullAddr) << "refill must keep shard 0 serviceable, alloc " << i;
    blocks.push_back(a);
  }
  const SpanDirectory& d = *sys.allocator->directory();
  EXPECT_GT(d.donated_in(0), 0u) << "demand never outgrew the slice";
  EXPECT_GT(sys.allocator->rebalance_moves(), 0u);
  EXPECT_EQ(sys.allocator->inline_donation_fallbacks(), 0u)
      << "the watermark refill fell behind and donation hit the malloc path";
  EXPECT_EQ(sys.allocator->partition_oom_failures(), 0u);
  // Release the burst. Every donated span that was actually consumed (mapped
  // then unmapped) must flow home; only the refill's unconsumed headroom --
  // kUngranted spans sitting inside shard 0's provider window, bounded by
  // the low mark plus one grant unit -- may legitimately stay away.
  for (const Addr a : blocks) {
    sys.allocator->Free(env, a);
  }
  sys.allocator->Flush(env);
  int home = -1;
  std::uint64_t n = 0;
  for (int i = 0;
       i < 50 && d.FindRecycledAwayRun(0, 1, 16, kSpan, &home, &n) != kNullAddr; ++i) {
    sys.fabric->DrainAll();
  }
  EXPECT_EQ(d.FindRecycledAwayRun(0, 1, 16, kSpan, &home, &n), kNullAddr)
      << "returns never drained the recycled away set";
  const std::uint64_t residue = d.away_spans(0);
  EXPECT_LE(residue, cfg.span_low_mark + 1) << "more than refill headroom stayed away";
  for (std::uint64_t s = 0; s < d.num_spans(); ++s) {
    if (d.OwnerOfSpan(s) == 0 && d.HomeOfSpan(s) != 0) {
      EXPECT_EQ(d.StateOfSpan(s), SpanState::kUngranted)
          << "a consumed (recycled) away span failed to return home";
    }
  }
  EXPECT_EQ(d.free_spans(0), 64u + residue);
  EXPECT_EQ(d.free_spans(1), 64u - residue);
  EXPECT_EQ(d.total_returned(), d.total_donated() - residue)
      << "every recycled donated span must flow home";
  AuditDirectoryConsistency(d);
}

// With span_low_mark = 0 the rebalancer must stay completely unwired: same
// burst, inline donation does all the work, and no background moves happen.
TEST(SpanRebalanceWatermark, ZeroLowMarkDisablesTheRebalancer) {
  auto machine = MakeMachine(3);
  auto sys = MakeNgxSystem(*machine, DonationOnlyConfig());
  ASSERT_FALSE(sys.allocator->rebalancing());
  Env env(*machine, 0);
  for (int i = 0; i < 100; ++i) {
    ASSERT_NE(sys.allocator->Malloc(env, 48 * 1024), kNullAddr);
  }
  EXPECT_GT(sys.allocator->inline_donation_fallbacks(), 0u)
      << "without watermarks the inline path is the only donation source";
  EXPECT_EQ(sys.allocator->rebalance_moves(), 0u);
  EXPECT_EQ(sys.allocator->directory()->total_returned(), 0u);
}

// A compute-only thread: advances its core's clock through the scheduler
// without ever touching the allocator (an application phase with no malloc
// traffic, so no drains and no post-drain ticks).
class ComputeOnlyThread : public SimThread {
 public:
  ComputeOnlyThread(int core, int steps) : core_(core), steps_(steps) {}
  bool Step(Env& env) override {
    env.Work(64);
    return --steps_ > 0;
  }
  int core_id() const override { return core_; }

 private:
  int core_;
  int steps_;
};

// The periodic timer's reason to exist (config.watermark_timer_cycles): the
// other two tick paths both have a blind spot. Post-drain hooks need fabric
// traffic; idle hooks only fire for cores strictly BEHIND the scheduler's
// front. A shard server that just served a burst sits AHEAD of every
// application core, so on a busy machine neither path reaches it, however
// much background work (returns home, refills for a starved peer) is
// pending. The timer bounds that wait to one period.
//
// Both variants construct the identical pending state with ZERO tick
// activity left over (two spans donated over the wire, then marked consumed
// and recycled host-side -- the protocol tests' idiom), park both shard
// servers far ahead of the lone application core -- the served-a-burst
// posture -- and run a pure-compute tail that only advances virtual time.
// Without the timer the recycled away spans are stuck forever; with it they
// flow home on the passage of time alone.
TEST(SpanRebalanceWatermark, TimerReachesAShardTheIdleWindowCannotReach) {
  constexpr std::uint64_t kPeriod = 50 * 1000;
  auto setup = [](std::uint64_t timer_cycles, std::unique_ptr<Machine>* machine_out,
                  NgxSystem* sys_out) {
    auto machine = MakeMachine(3);
    NgxConfig cfg = DonationOnlyConfig();
    cfg.span_low_mark = 8;
    cfg.span_high_mark = 16;
    cfg.watermark_timer_cycles = timer_cycles;
    NgxSystem sys = MakeNgxSystem(*machine, cfg);
    ASSERT_TRUE(sys.allocator->rebalancing());
    Env env(*machine, 0);
    // Shard 0 pulls two spans from shard 1, maps and fully recycles them:
    // a recycled away run that the return protocol must send home. Both
    // free-span counts stay far from the marks, so the donor-side drain
    // tick inside the SyncRequest has nothing to act on -- the pending
    // return is created entirely after the last tick opportunity.
    const std::uint64_t resp =
        sys.fabric->SyncRequest(env, 1, OffloadOp::kRequestSpans, (2ull << 8) | 0);
    ASSERT_NE(resp, 0u);
    const Addr base = resp & ~0xffffull;
    const std::uint64_t got = resp & 0xffff;
    SpanDirectory& d = *sys.allocator->directory();
    d.NoteMapped(0, base, got * kSpan);
    d.NoteUnmapped(0, base, got * kSpan);
    ASSERT_GT(d.away_spans(0), 0u);
    *machine_out = std::move(machine);
    *sys_out = std::move(sys);
  };
  // Timer hooks only fire from the scheduler, so the burst above is
  // bit-identical in both variants: same pre-tail state to diverge from.
  std::unique_ptr<Machine> m_off;
  NgxSystem sys_off;
  setup(0, &m_off, &sys_off);
  std::unique_ptr<Machine> m_on;
  NgxSystem sys_on;
  setup(kPeriod, &m_on, &sys_on);
  const SpanDirectory& d_off = *sys_off.allocator->directory();
  const SpanDirectory& d_on = *sys_on.allocator->directory();
  ASSERT_EQ(d_off.away_spans(0), d_on.away_spans(0));
  int home = -1;
  std::uint64_t n = 0;
  const Addr stuck = d_on.FindRecycledAwayRun(0, 1, 16, kSpan, &home, &n);
  ASSERT_NE(stuck, kNullAddr)
      << "returns completed during the burst; nothing left for the tail";
  ASSERT_EQ(d_off.FindRecycledAwayRun(0, 1, 16, kSpan, &home, &n), stuck);
  const std::uint64_t moves_before = sys_off.allocator->rebalance_moves();
  ASSERT_EQ(moves_before, sys_on.allocator->rebalance_moves());

  // The quiescent tail. Each round re-parks the servers ahead (they are
  // busy serving someone else) and advances the application core by less
  // than the lead, so the idle-hook window never opens: every core the
  // scheduler sees stays behind both servers throughout.
  auto run_tail = [&](Machine& machine, int rounds) {
    for (int r = 0; r < rounds; ++r) {
      const std::uint64_t front = machine.core(0).now();
      machine.core(1).AdvanceTo(front + 40 * kPeriod);
      machine.core(2).AdvanceTo(front + 40 * kPeriod);
      ComputeOnlyThread t(0, 400);
      Scheduler::Run(machine, {&t});
      ASSERT_LT(machine.core(0).now(), machine.core(1).now());
      ASSERT_LT(machine.core(0).now(), machine.core(2).now());
    }
  };
  run_tail(*m_off, 20);
  if (::testing::Test::HasFatalFailure()) {
    return;
  }
  // Without the timer: not one background move in 20 rounds of pure time.
  EXPECT_EQ(sys_off.allocator->rebalance_moves(), moves_before);
  EXPECT_EQ(d_off.FindRecycledAwayRun(0, 1, 16, kSpan, &home, &n), stuck);

  run_tail(*m_on, 20);
  if (::testing::Test::HasFatalFailure()) {
    return;
  }
  // With it: the catch-up tick fires each round and the returns converge.
  EXPECT_GT(sys_on.allocator->rebalance_moves(), moves_before);
  EXPECT_EQ(d_on.FindRecycledAwayRun(0, 1, 16, kSpan, &home, &n), kNullAddr)
      << "timer ticks never finished sending recycled away spans home";
  EXPECT_EQ(d_on.away_spans(0), 0u);
  EXPECT_EQ(d_on.free_spans(0), 64u) << "the home split must be restored";
  EXPECT_EQ(d_on.free_spans(1), 64u);
  AuditDirectoryConsistency(d_on);
}

// ---- TakeRecycled next-fit cursor regression ----

// A fragmented 64Ki-span directory: 2048 single-span runs (which can never
// satisfy a 2-span take) followed by 256 two-span runs. A scan restarting
// from run 0 re-rejects every single-span run per request (~525k probes for
// 256 takes); the next-fit cursor must keep the whole sequence
// amortized-linear.
TEST(SpanRebalanceCursor, FragmentedTakesStayAmortizedLinear) {
  constexpr std::uint64_t kSpans = 64 * 1024;
  SpanDirectory d(kNgxHeapBase, kSpans * kSpan, kSpan, 1);
  d.NoteMapped(0, kNgxHeapBase, kSpans * kSpan);
  // 2048 isolated single-span holes in the low half...
  for (std::uint64_t i = 0; i < 2048; ++i) {
    d.NoteUnmapped(0, d.AddrOfSpan(2 * i), kSpan);
  }
  // ...then 256 isolated two-span holes above them.
  const std::uint64_t pairs_at = 8192;
  for (std::uint64_t i = 0; i < 256; ++i) {
    d.NoteUnmapped(0, d.AddrOfSpan(pairs_at + 4 * i), 2 * kSpan);
  }
  ASSERT_EQ(d.RecycledRuns(0).size(), 2048u + 256u);
  const std::uint64_t steps_before = d.take_scan_steps();
  Addr prev = kNullAddr;
  for (int i = 0; i < 256; ++i) {
    const Addr base = d.TakeRecycled(0, 2, kSpan);
    ASSERT_NE(base, kNullAddr) << "take " << i << " found no two-span run";
    EXPECT_NE(base, prev) << "the same run was handed out twice";
    prev = base;
  }
  const std::uint64_t scanned = d.take_scan_steps() - steps_before;
  // First take walks past the 2048 singles once; each later take resumes at
  // the cursor and succeeds in O(1). Generous slack, far below the ~525k a
  // restart-from-zero scan costs.
  EXPECT_LT(scanned, 2048u + 10u * 256u + 64u)
      << "next-fit cursor regressed to rescanning the fragmented prefix";
  AuditDirectoryConsistency(d);
}

}  // namespace
}  // namespace ngx
