// Stash pipeline invariant tests (DESIGN.md §9):
//
//  * a randomized malloc/free interleaving matrix -- {1, 2, 4} shards x
//    pipeline {on, off} x seeds, two client cores -- audited by the shadow
//    heap (no double-hand-out, no overlap, live data intact) and by the
//    heap-level balance identity: after Flush has returned every stashed
//    block (both halves, the spill stack, and any unconsumed in-flight
//    refill) and the rings drain, server-heap mallocs == frees;
//  * counter invariants tying the protocol together: every flip consumes at
//    most one refill, refill batches never exceed the single-line half, and
//    a starvation stall implies a flip;
//  * a deterministic spill-stack test: a free burst deeper than the two
//    halves parks blocks in the client-only spill, and Flush still returns
//    every one of them;
//  * the pipeline keeps serving correct class sizes after a Flush cleared
//    the halves (the sync fallback reseeds).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/core/nextgen_malloc.h"
#include "tests/test_util.h"

namespace ngx {
namespace {

struct PipeCase {
  std::uint64_t seed;
  int shards;
  bool pipeline;
};

NgxConfig PipelineConfig(int shards, bool pipeline) {
  NgxConfig cfg;
  cfg.prediction = true;
  cfg.stash_pipeline = pipeline;
  cfg.num_shards = shards;
  return cfg;
}

// Asserts the counter relationships any pipeline run must satisfy.
void AuditPipelineCounters(const NgxAllocator& a) {
  // A flip consumes a published refill (or, rarely, a client-owned inactive
  // half); a refill that was never consumed can at most linger once per
  // (core, class), and Flush retires it -- so flips never exceed refills
  // plus the local flips.
  EXPECT_LE(a.stash_flips(), a.stash_refills() + a.stash_local_flips());
  // The server clamps every fill to the single-line half.
  EXPECT_LE(a.refill_blocks(), a.stash_refills() * 7);
  // A stall happens only while waiting out a flip's publish.
  EXPECT_LE(a.stash_starvation_stalls(), a.stash_flips());
}

class StashPipelineMatrixTest : public ::testing::TestWithParam<PipeCase> {};

TEST_P(StashPipelineMatrixTest, RandomInterleavingsKeepTheHeapBalanced) {
  const PipeCase& c = GetParam();
  auto machine = MakeMachine(2 + c.shards);
  NgxSystem sys = MakeNgxSystem(*machine, PipelineConfig(c.shards, c.pipeline),
                                /*first_server_core=*/2);
  ASSERT_EQ(sys.allocator->stash_pipelined(), c.pipeline);
  // Two client cores interleaved in rounds: blocks allocated on one core are
  // frequently freed from the other (the exerciser's live set is shared), so
  // recycled frees land in the freeing core's stash and pop back out there.
  ShadowHeapExerciser ex(*machine, *sys.allocator, c.seed);
  for (int round = 0; round < 3; ++round) {
    for (int core = 0; core < 2; ++core) {
      ex.Run(core, 500, 80, 1, 2048);
      if (::testing::Test::HasFatalFailure()) {
        return;
      }
    }
  }
  ex.FreeAll(0);
  // Flush is per calling core: each client returns its own halves + spill.
  for (int core = 0; core < 2; ++core) {
    Env env(*machine, core);
    sys.allocator->Flush(env);
  }
  sys.fabric->DrainAll();
  const AllocatorStats s = sys.allocator->stats();
  EXPECT_EQ(s.mallocs, s.frees)
      << "a stashed block was lost (halves, spill, or an in-flight refill)";
  EXPECT_EQ(s.oom_failures, 0u);
  if (c.pipeline) {
    EXPECT_GT(sys.allocator->stash_hits(), 0u);
    AuditPipelineCounters(*sys.allocator);
  } else {
    EXPECT_EQ(sys.allocator->stash_refills(), 0u);
    EXPECT_EQ(sys.allocator->stash_flips(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Interleavings, StashPipelineMatrixTest,
    ::testing::Values(PipeCase{1, 1, true}, PipeCase{1, 1, false},
                      PipeCase{2, 2, true}, PipeCase{2, 2, false},
                      PipeCase{3, 4, true}, PipeCase{3, 4, false},
                      PipeCase{11, 1, true}, PipeCase{12, 2, true},
                      PipeCase{13, 4, true}),
    [](const ::testing::TestParamInfo<PipeCase>& info) {
      const PipeCase& c = info.param;
      return "seed" + std::to_string(c.seed) + "_shards" + std::to_string(c.shards) +
             (c.pipeline ? "_pipe" : "_sync");
    });

// A free burst deeper than the two halves (2 x 7 entries) must park the
// excess in the client-only spill stack -- and Flush must return every spill
// entry to the server, or the heap leaks.
TEST(StashPipelineSpill, FreeBurstSpillsAndFlushReturnsAll) {
  auto machine = MakeMachine(2);
  NgxConfig cfg = PipelineConfig(1, true);
  cfg.stash_capacity = 32;  // 14 in the halves + 18 in the spill stack
  NgxSystem sys = MakeNgxSystem(*machine, cfg, 1);
  Env app(*machine, 0);
  // Warm the predictor and collect one class worth of blocks.
  std::vector<Addr> blocks;
  for (int i = 0; i < 48; ++i) {
    const Addr a = sys.allocator->Malloc(app, 128);
    ASSERT_NE(a, kNullAddr);
    blocks.push_back(a);
  }
  std::sort(blocks.begin(), blocks.end());
  ASSERT_EQ(std::adjacent_find(blocks.begin(), blocks.end()), blocks.end())
      << "a block was handed out twice";
  // Free them all: the first recycles fill the active half, the next 18 the
  // spill stack, the rest ride the ring.
  for (const Addr a : blocks) {
    sys.allocator->Free(app, a);
  }
  EXPECT_GE(sys.allocator->stash_recycled_frees(), 18u)
      << "the spill stack absorbed fewer frees than its depth";
  // Popping again must serve the spilled blocks LIFO without server traffic.
  const std::uint64_t sync_before = sys.allocator->sync_mallocs();
  for (int i = 0; i < 20; ++i) {
    const Addr a = sys.allocator->Malloc(app, 128);
    ASSERT_NE(a, kNullAddr);
    sys.allocator->Free(app, a);
  }
  EXPECT_EQ(sys.allocator->sync_mallocs(), sync_before)
      << "recycled inventory should have served the whole run";
  sys.allocator->Flush(app);
  sys.fabric->DrainAll();
  const AllocatorStats s = sys.allocator->stats();
  EXPECT_EQ(s.mallocs, s.frees) << "Flush lost a spilled or stashed block";
  AuditPipelineCounters(*sys.allocator);
}

// After Flush empties the halves, the next malloc takes the sync fallback,
// reseeds the active half, and keeps returning correctly-classed blocks.
TEST(StashPipelineSpill, PipelineRecoversAfterFlush) {
  auto machine = MakeMachine(2);
  NgxSystem sys = MakeNgxSystem(*machine, PipelineConfig(1, true), 1);
  Env app(*machine, 0);
  for (int round = 0; round < 3; ++round) {
    std::vector<Addr> blocks;
    for (int i = 0; i < 30; ++i) {
      const Addr a = sys.allocator->Malloc(app, 100);
      ASSERT_NE(a, kNullAddr);
      EXPECT_GE(sys.allocator->UsableSize(app, a), 100u);
      blocks.push_back(a);
    }
    std::sort(blocks.begin(), blocks.end());
    ASSERT_EQ(std::adjacent_find(blocks.begin(), blocks.end()), blocks.end());
    for (const Addr a : blocks) {
      sys.allocator->Free(app, a);
    }
    sys.allocator->Flush(app);
    sys.fabric->DrainAll();
    const AllocatorStats s = sys.allocator->stats();
    EXPECT_EQ(s.mallocs, s.frees) << "round " << round;
  }
}

}  // namespace
}  // namespace ngx
