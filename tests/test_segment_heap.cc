// Segment + slab server heap tests (DESIGN.md §10):
//
//  * slab carve mechanics: freelist pops vs bump carves, exhausted slabs
//    leaving and rejoining the class list, fully-free slabs retiring their
//    unit back to the segment, partial-segment unit reuse;
//  * empty-pool retention semantics (ServerHeapConfig::empty_segment_retain):
//    recycled segments park mapped up to the bound, unmap beyond / at 0;
//  * freelist overflow past the 20 inline header entries;
//  * metadata geometry: header lines of consecutive units cover every L1 set,
//    overflow rows stride an odd number of lines;
//  * ClassifyForRecycle across all three heap kinds (small class, large -1);
//  * donated ranges below heap_base: wrapped-index metadata carves, frees and
//    classifies correctly, and recycled donated segments unmap (the hook the
//    span directory's return protocol needs);
//  * carving a range AFTER it returns home (TrimTail out, AddRange back);
//  * randomized malloc/free churn through the real 2/4-shard fabric with the
//    segment heap behind every shard, auditing the span directory afterwards;
//  * determinism: identical runs produce identical clocks and stats.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "src/alloc/layout.h"
#include "src/alloc/size_classes.h"
#include "src/core/nextgen_malloc.h"
#include "src/core/segment_heap.h"
#include "src/core/span_directory.h"
#include "tests/test_util.h"

namespace ngx {
namespace {

constexpr std::uint64_t kSeg = 128 * 1024;   // ServerHeapConfig default span
constexpr std::uint64_t kUnit = kSeg / kUnitsPerSegment;  // 32 KiB

ServerHeapConfig SegmentConfig(std::uint32_t retain = 8) {
  ServerHeapConfig cfg;
  cfg.heap_kind = HeapKind::kSegment;
  cfg.hugepage_spans = false;  // tight span-sized mappings
  cfg.empty_segment_retain = retain;
  return cfg;
}

// ---- Slab carve mechanics ----

TEST(SegmentHeap, ChurnPopsFreelistsRetiresSlabsAndReusesUnits) {
  auto machine = MakeMachine(1);
  // Eager retirement (no retention cache): this test pins the historical
  // retire-on-fully-free mechanics; the retention cache has its own tests.
  ServerHeapConfig cfg = SegmentConfig();
  cfg.slab_retain_depth = 0;
  SegmentHeap heap(*machine, kNgxHeapBase, kNgxMetaBase, cfg);
  Env env(*machine, 0);
  // 600 x 64 B: slab 0 (512 blocks) exhausts and unlinks, slab 1 serves the
  // rest from a reused unit of the same segment.
  std::vector<Addr> blocks;
  for (int i = 0; i < 600; ++i) {
    const Addr a = heap.Malloc(env, 64);
    ASSERT_NE(a, kNullAddr);
    blocks.push_back(a);
  }
  const SegmentHeapStats& st = heap.segment_stats();
  EXPECT_EQ(st.bump_carves, 600u);
  EXPECT_EQ(st.fresh_segments, 1u) << "both slabs fit one segment";
  EXPECT_EQ(st.unit_reuses, 1u) << "slab 1 must come from the partial segment";
  // Free everything in allocation order: slab 0 re-links on its first free,
  // slab 1 (fully free, not the class head) retires its unit.
  for (const Addr a : blocks) {
    heap.Free(env, a);
  }
  EXPECT_GE(st.slab_retires, 1u);
  EXPECT_EQ(heap.stats().bytes_live, 0u);
  // Reallocate: the surviving head slab serves from its freelist first.
  for (int i = 0; i < 600; ++i) {
    ASSERT_NE(heap.Malloc(env, 64), kNullAddr);
  }
  EXPECT_EQ(st.freelist_pops, 512u) << "every head-slab block reused LIFO";
  EXPECT_EQ(st.fresh_segments, 1u) << "churn must not map new segments";
  const AllocatorStats s = heap.stats();
  EXPECT_EQ(s.mallocs - s.frees, 600u);
}

TEST(SegmentHeap, EmptyPoolParksRecycledSegmentsForReuse) {
  auto machine = MakeMachine(1);
  SegmentHeap heap(*machine, kNgxHeapBase, kNgxMetaBase, SegmentConfig(/*retain=*/2));
  Env env(*machine, 0);
  // 32 KiB blocks: one block per slab unit, so 8 allocations carve exactly
  // two segments.
  std::vector<Addr> blocks;
  for (int i = 0; i < 8; ++i) {
    blocks.push_back(heap.Malloc(env, kUnit));
    ASSERT_NE(blocks.back(), kNullAddr);
  }
  const SegmentHeapStats& st = heap.segment_stats();
  EXPECT_EQ(st.fresh_segments, 2u);
  for (const Addr a : blocks) {
    heap.Free(env, a);
  }
  // The first segment fully recycled into the empty pool; the head slab's
  // unit keeps the second one partial. Nothing unmapped.
  EXPECT_EQ(st.segments_unmapped, 0u);
  EXPECT_EQ(heap.stats().munmap_calls, 0u);
  // Refilling consumes the head slab's freelist, the partial segment's free
  // units, and then the parked segment -- never a fresh mapping.
  for (int i = 0; i < 8; ++i) {
    ASSERT_NE(heap.Malloc(env, kUnit), kNullAddr);
  }
  EXPECT_GE(st.segment_reuses, 1u) << "the parked segment must be reused";
  EXPECT_EQ(st.fresh_segments, 2u);
}

TEST(SegmentHeap, ZeroRetentionUnmapsRecycledSegments) {
  auto machine = MakeMachine(1);
  SegmentHeap heap(*machine, kNgxHeapBase, kNgxMetaBase, SegmentConfig(/*retain=*/0));
  Env env(*machine, 0);
  const std::uint64_t meta_mapped = heap.stats().mapped_bytes;
  std::vector<Addr> blocks;
  for (int i = 0; i < 8; ++i) {
    blocks.push_back(heap.Malloc(env, kUnit));
    ASSERT_NE(blocks.back(), kNullAddr);
  }
  EXPECT_EQ(heap.stats().mapped_bytes, meta_mapped + 2 * kSeg);
  for (const Addr a : blocks) {
    heap.Free(env, a);
  }
  // One-block slabs exhaust on their only alloc (leaving the class list), so
  // every free retires its slab: both segments fully recycle and, with no
  // pool to park in, must be unmapped immediately.
  EXPECT_EQ(heap.segment_stats().segments_unmapped, 2u);
  EXPECT_EQ(heap.stats().mapped_bytes, meta_mapped);
}

TEST(SegmentHeap, RetentionCacheStopsUnitBlockRetireChurn) {
  auto machine = MakeMachine(1);
  SegmentHeap heap(*machine, kNgxHeapBase, kNgxMetaBase, SegmentConfig());
  Env env(*machine, 0);
  // kUnit blocks carve one-block slabs: each malloc exhausts its slab on the
  // spot and each free makes it fully free again. Without retention that is
  // a RetireSlab on EVERY free and a full slab acquire on every malloc; the
  // retention cache turns steady churn into freelist pops on one pinned
  // slab.
  const SegmentHeapStats& st = heap.segment_stats();
  for (int round = 0; round < 100; ++round) {
    const Addr a = heap.Malloc(env, kUnit);
    ASSERT_NE(a, kNullAddr);
    heap.Free(env, a);
  }
  EXPECT_EQ(st.slab_retires, 0u) << "churn must not retire the hot slab";
  EXPECT_EQ(st.slab_retains, 100u) << "every free parks the slab in the cache";
  EXPECT_EQ(st.slab_acquires, 1u) << "one slab serves the whole churn";
  EXPECT_EQ(st.freelist_pops, 99u) << "every re-malloc pops the retained slab";
  EXPECT_EQ(st.fresh_segments, 1u);
  EXPECT_EQ(heap.stats().bytes_live, 0u);
}

TEST(SegmentHeap, RetentionDisabledRetiresOnEveryChurnRound) {
  auto machine = MakeMachine(1);
  ServerHeapConfig cfg = SegmentConfig();
  cfg.slab_retain_depth = 0;
  SegmentHeap heap(*machine, kNgxHeapBase, kNgxMetaBase, cfg);
  Env env(*machine, 0);
  // The same churn with the cache off: the historical worst case, one retire
  // and one slab acquire per round (the figure the retention cache erases).
  const SegmentHeapStats& st = heap.segment_stats();
  for (int round = 0; round < 100; ++round) {
    const Addr a = heap.Malloc(env, kUnit);
    ASSERT_NE(a, kNullAddr);
    heap.Free(env, a);
  }
  EXPECT_EQ(st.slab_retires, 100u);
  EXPECT_EQ(st.slab_retains, 0u);
  EXPECT_EQ(st.slab_acquires, 100u);
  EXPECT_EQ(heap.stats().bytes_live, 0u);
}

TEST(SegmentHeap, RetentionDepthBoundsFullyFreeSlabs) {
  auto machine = MakeMachine(1);
  ServerHeapConfig cfg = SegmentConfig();
  cfg.slab_retain_depth = 1;
  SegmentHeap heap(*machine, kNgxHeapBase, kNgxMetaBase, cfg);
  Env env(*machine, 0);
  // Two live one-block slabs at depth 1; freeing both can retain only one.
  // The second fully-free slab must retire: retention is a bounded cache,
  // not a leak of every fully-free slab.
  const Addr a = heap.Malloc(env, kUnit);
  const Addr b = heap.Malloc(env, kUnit);
  ASSERT_NE(a, kNullAddr);
  ASSERT_NE(b, kNullAddr);
  const SegmentHeapStats& st = heap.segment_stats();
  heap.Free(env, a);
  EXPECT_EQ(st.slab_retains, 1u);
  heap.Free(env, b);
  EXPECT_EQ(st.slab_retains, 1u) << "the cache is full; slab b must retire";
  EXPECT_EQ(st.slab_retires, 1u);
  EXPECT_EQ(heap.stats().bytes_live, 0u);
}

TEST(SegmentHeap, LazyRetireHysteresisAbsorbsMultiSlabExcursions) {
  auto machine = MakeMachine(1);
  SegmentHeap heap(*machine, kNgxHeapBase, kNgxMetaBase, SegmentConfig());
  Env env(*machine, 0);
  // Six live one-block slabs freed in a burst against the default depth (4):
  // the first four fully-free slabs park in the cache, the overflow retires.
  std::vector<Addr> blocks;
  for (int i = 0; i < 6; ++i) {
    blocks.push_back(heap.Malloc(env, kUnit));
    ASSERT_NE(blocks.back(), kNullAddr);
  }
  const SegmentHeapStats& st = heap.segment_stats();
  for (const Addr a : blocks) {
    heap.Free(env, a);
  }
  EXPECT_EQ(st.slab_retains, 4u);
  EXPECT_EQ(st.slab_retires, 2u);
  // Re-allocating drains the cache before carving anything fresh.
  const std::uint64_t acquires_before = st.slab_acquires;
  std::vector<Addr> again;
  for (int i = 0; i < 4; ++i) {
    again.push_back(heap.Malloc(env, kUnit));
    ASSERT_NE(again.back(), kNullAddr);
  }
  EXPECT_EQ(st.slab_acquires, acquires_before) << "four mallocs pop retained slabs";
  for (const Addr a : again) {
    heap.Free(env, a);
  }
  EXPECT_EQ(heap.stats().bytes_live, 0u);
}

TEST(SegmentHeap, FreelistOverflowSpillsPastTheInlineEntries) {
  auto machine = MakeMachine(1);
  SegmentHeap heap(*machine, kNgxHeapBase, kNgxMetaBase, SegmentConfig());
  Env env(*machine, 0);
  std::vector<Addr> blocks;
  for (int i = 0; i < 64; ++i) {
    blocks.push_back(heap.Malloc(env, 64));
  }
  // The single slab is the class head, so freeing every block deepens its
  // freelist to 64 without retiring it: 44 entries spill past the inline 20.
  for (const Addr a : blocks) {
    heap.Free(env, a);
  }
  const SegmentHeapStats& st = heap.segment_stats();
  EXPECT_EQ(st.overflow_spills, 64u - kSlabInlineEntries);
  EXPECT_EQ(st.slab_retires, 0u);
  // Every block pops back out of the same slab (same address set).
  std::set<Addr> again;
  for (int i = 0; i < 64; ++i) {
    again.insert(heap.Malloc(env, 64));
  }
  EXPECT_EQ(st.freelist_pops, 64u);
  EXPECT_EQ(again, std::set<Addr>(blocks.begin(), blocks.end()));
}

// ---- Metadata geometry ----

TEST(SegmentHeap, HeaderLinesCoverEveryCacheSetAndOverflowStrideIsOdd) {
  auto machine = MakeMachine(1);
  SegmentHeap heap(*machine, kNgxHeapBase, kNgxMetaBase, SegmentConfig());
  const SlabLayout& layout = heap.layout();
  // Consecutive units' header lines are consecutive 64 B lines: 64 units
  // cover all 64 L1 sets (a span-aligned in-segment header would alias one).
  std::set<std::uint64_t> sets;
  for (std::uint64_t u = 0; u < 64; ++u) {
    ASSERT_EQ(layout.HeaderAddr(u + 1) - layout.HeaderAddr(u), kSlabHeaderBytes);
    sets.insert((layout.HeaderAddr(u) / 64) % 64);
  }
  EXPECT_EQ(sets.size(), 64u);
  // Overflow rows stride an odd number of lines, so successive units' rows
  // also walk every set (gcd(odd, 64) = 1).
  EXPECT_EQ(layout.overflow_stride() % 64, 0u);
  EXPECT_EQ((layout.overflow_stride() / 64) % 2, 1u);
  // The inline/overflow boundary of the freelist entry addressing.
  EXPECT_EQ(layout.EntryAddr(3, kSlabInlineEntries - 1),
            layout.HeaderAddr(3) + 24 + 2 * (kSlabInlineEntries - 1));
  EXPECT_EQ(layout.EntryAddr(3, kSlabInlineEntries), layout.OverflowBase(3));
}

// ---- ClassifyForRecycle across every heap kind ----

class ClassifyTest : public ::testing::TestWithParam<HeapKind> {};

TEST_P(ClassifyTest, SmallClassesMatchAndLargeIsMinusOne) {
  auto machine = MakeMachine(1);
  ServerHeapConfig cfg;
  cfg.heap_kind = GetParam();
  auto heap = MakeServerHeap(*machine, kNgxHeapBase, kNgxMetaBase, cfg);
  Env env(*machine, 0);
  const SizeClasses classes(cfg.small_max);
  // Every size class: a live small block classifies as its exact class.
  for (std::uint32_t cls = 0; cls < classes.num_classes(); cls += 7) {
    const Addr a = heap->Malloc(env, classes.SizeOf(cls));
    ASSERT_NE(a, kNullAddr);
    EXPECT_EQ(heap->ClassifyForRecycle(env, a), static_cast<std::int64_t>(cls));
    heap->Free(env, a);
  }
  // Large mappings must classify as -1 (never recycled through a stash).
  const Addr big = heap->Malloc(env, cfg.small_max + 1);
  ASSERT_NE(big, kNullAddr);
  EXPECT_EQ(heap->ClassifyForRecycle(env, big), -1);
  heap->Free(env, big);
}

INSTANTIATE_TEST_SUITE_P(Kinds, ClassifyTest,
                         ::testing::Values(HeapKind::kSegregated,
                                           HeapKind::kAggregated,
                                           HeapKind::kSegment),
                         [](const ::testing::TestParamInfo<HeapKind>& p) {
                           return HeapKindName(p.param);
                         });

// ---- Donated ranges (the elastic fabric's AddRange graft, heap-level) ----

TEST(SegmentHeap, CarvesDonatedRangeBelowHeapBaseWithWrappedMetadata) {
  auto machine = MakeMachine(1);
  ServerHeapConfig cfg = SegmentConfig(/*retain=*/0);
  cfg.window_bytes = 4 * kSeg;             // home slice: 4 segments
  cfg.meta_window_bytes = 1ull << 30;      // side tables sized by span count
  const Addr home_base = kNgxHeapBase + (16ull << 20);
  SegmentHeap heap(*machine, home_base, kNgxMetaBase, cfg);
  Env env(*machine, 0);
  // Exhaust the home slice with one 32 KiB block per unit.
  std::vector<Addr> home;
  for (int i = 0; i < 16; ++i) {
    home.push_back(heap.Malloc(env, kUnit));
    ASSERT_NE(home.back(), kNullAddr);
  }
  EXPECT_EQ(heap.Malloc(env, kUnit), kNullAddr) << "home slice must be dry";
  // Graft two segments donated from a LOWER shard's slice: every index the
  // layout computes for them wraps, and must still carve correctly.
  const Addr donated = kNgxHeapBase;
  heap.span_provider().AddRange(donated, 2 * kSeg);
  std::vector<Addr> away;
  for (int i = 0; i < 8; ++i) {
    const Addr a = heap.Malloc(env, kUnit);
    ASSERT_NE(a, kNullAddr);
    ASSERT_GE(a, donated);
    ASSERT_LT(a, donated + 2 * kSeg) << "must carve the grafted range";
    EXPECT_EQ(heap.ClassifyForRecycle(env, a),
              static_cast<std::int64_t>(SizeClasses(cfg.small_max).ClassOf(kUnit)));
    EXPECT_EQ(heap.UsableSize(env, a), kUnit);
    away.push_back(a);
  }
  // Release everything. One-block slabs always retire on free, so with no
  // retention every segment -- home and donated alike -- unmaps. Unmapping
  // is what lets the span directory mark donated segments kRecycled and
  // return them.
  for (const Addr a : away) {
    heap.Free(env, a);
  }
  for (const Addr a : home) {
    heap.Free(env, a);
  }
  EXPECT_EQ(heap.segment_stats().segments_unmapped, 6u);
  EXPECT_EQ(heap.stats().bytes_live, 0u);
  const AllocatorStats s = heap.stats();
  EXPECT_EQ(s.mallocs - s.oom_failures, s.frees);
}

TEST(SegmentHeap, CarvesAndClassifiesAfterARangeReturnsHome) {
  auto machine = MakeMachine(1);
  ServerHeapConfig cfg = SegmentConfig(/*retain=*/0);
  cfg.window_bytes = 4 * kSeg;
  cfg.meta_window_bytes = 1ull << 30;
  SegmentHeap heap(*machine, kNgxHeapBase, kNgxMetaBase, cfg);
  Env env(*machine, 0);
  // Donate the window's tail away (the sender side of kOfferSpans), leaving
  // two segments at home.
  const Addr lent = heap.span_provider().TrimTail(2 * kSeg, kSeg);
  ASSERT_NE(lent, kNullAddr);
  std::vector<Addr> blocks;
  for (int i = 0; i < 8; ++i) {
    blocks.push_back(heap.Malloc(env, kUnit));
    ASSERT_NE(blocks.back(), kNullAddr);
  }
  EXPECT_EQ(heap.Malloc(env, kUnit), kNullAddr) << "the lent tail must be gone";
  // The borrower recycled the segments and the return protocol grafted them
  // back: carving must resume into the returned range, classifying normally.
  heap.span_provider().AddRange(lent, 2 * kSeg);
  for (int i = 0; i < 8; ++i) {
    const Addr a = heap.Malloc(env, kUnit);
    ASSERT_NE(a, kNullAddr);
    ASSERT_GE(a, lent);
    ASSERT_LT(a, lent + 2 * kSeg);
    EXPECT_EQ(heap.ClassifyForRecycle(env, a),
              static_cast<std::int64_t>(SizeClasses(cfg.small_max).ClassOf(kUnit)));
    blocks.push_back(a);
  }
  for (const Addr a : blocks) {
    heap.Free(env, a);
  }
  EXPECT_EQ(heap.stats().bytes_live, 0u);
}

// ---- Randomized lifecycle stress through the real fabric ----

// Recomputes the directory's per-shard tallies from the per-span accessors
// (a lean version of test_span_rebalance.cc's auditor).
void AuditDirectory(const SpanDirectory& d) {
  std::vector<std::uint64_t> free_count(static_cast<std::size_t>(d.num_shards()), 0);
  std::vector<std::uint64_t> away_count(static_cast<std::size_t>(d.num_shards()), 0);
  for (std::uint64_t s = 0; s < d.num_spans(); ++s) {
    const int owner = d.OwnerOfSpan(s);
    ASSERT_GE(owner, 0);
    ASSERT_LT(owner, d.num_shards());
    if (d.StateOfSpan(s) != SpanDirectory::SpanState::kGranted) {
      ++free_count[static_cast<std::size_t>(owner)];
    }
    if (d.HomeOfSpan(s) != owner) {
      ++away_count[static_cast<std::size_t>(owner)];
    }
  }
  std::uint64_t donated_out = 0;
  std::uint64_t donated_in = 0;
  for (int shard = 0; shard < d.num_shards(); ++shard) {
    EXPECT_EQ(d.free_spans(shard), free_count[static_cast<std::size_t>(shard)]);
    EXPECT_EQ(d.away_spans(shard), away_count[static_cast<std::size_t>(shard)]);
    donated_out += d.donated_out(shard);
    donated_in += d.donated_in(shard);
  }
  EXPECT_EQ(donated_out, donated_in);
  EXPECT_LE(d.total_returned(), d.total_donated());
}

class SegmentFabricStress : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(SegmentFabricStress, RandomChurnKeepsTheDirectoryConsistent) {
  const auto [seed, shards] = GetParam();
  auto machine = MakeMachine(shards + 2);
  NgxConfig cfg;
  cfg.num_shards = shards;
  cfg.heap_kind = HeapKind::kSegment;
  cfg.empty_segment_retain = 0;  // recycled segments unmap -> returnable
  cfg.hugepage_spans = false;
  cfg.heap_window = static_cast<std::uint64_t>(shards) * 4 * 1024 * 1024;
  cfg.span_donation = true;
  cfg.span_low_mark = 8;
  cfg.span_high_mark = 16;
  auto sys = MakeNgxSystem(*machine, cfg);
  ASSERT_EQ(sys.allocator->heap_kind(), HeapKind::kSegment);
  ASSERT_EQ(sys.allocator->heap(0).name(), "ngx-segment");
  ShadowHeapExerciser ex(*machine, *sys.allocator, seed);
  for (int round = 0; round < 2; ++round) {
    for (int core = 0; core < 2; ++core) {
      ex.Run(core, 500, 40, 64, 48 * 1024);
      if (::testing::Test::HasFatalFailure()) {
        return;
      }
    }
  }
  ex.FreeAll(0);
  for (int core = 0; core < 2; ++core) {
    Env env(*machine, core);
    sys.allocator->Flush(env);
  }
  sys.fabric->DrainAll();
  AuditDirectory(*sys.allocator->directory());
  const AllocatorStats stats = sys.allocator->stats();
  EXPECT_EQ(stats.mallocs - stats.oom_failures, stats.frees);
  EXPECT_EQ(stats.bytes_live, 0u);
  EXPECT_EQ(sys.allocator->partition_oom_failures(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsByShards, SegmentFabricStress,
    ::testing::Combine(::testing::Values<std::uint64_t>(1, 42, 0xfeedface),
                       ::testing::Values(2, 4)),
    [](const ::testing::TestParamInfo<std::tuple<std::uint64_t, int>>& p) {
      return "seed" + std::to_string(std::get<0>(p.param)) + "_shards" +
             std::to_string(std::get<1>(p.param));
    });

// ---- Determinism ----

TEST(SegmentHeap, IdenticalRunsProduceIdenticalClocksAndStats) {
  auto run = [](std::uint64_t* cycles, SegmentHeapStats* st, AllocatorStats* as) {
    auto machine = MakeMachine(1);
    SegmentHeap heap(*machine, kNgxHeapBase, kNgxMetaBase, SegmentConfig(1));
    Env env(*machine, 0);
    Rng rng(7);
    std::vector<Addr> live;
    for (int i = 0; i < 3000; ++i) {
      if (live.size() < 20 || rng.Chance(1, 2)) {
        const Addr a = heap.Malloc(env, rng.Range(16, 40000));
        ASSERT_NE(a, kNullAddr);
        live.push_back(a);
      } else {
        const std::size_t pick = rng.Below(live.size());
        heap.Free(env, live[pick]);
        live.erase(live.begin() + static_cast<long>(pick));
      }
    }
    *cycles = env.now();
    *st = heap.segment_stats();
    *as = heap.stats();
  };
  std::uint64_t c1 = 0;
  std::uint64_t c2 = 0;
  SegmentHeapStats s1;
  SegmentHeapStats s2;
  AllocatorStats a1;
  AllocatorStats a2;
  run(&c1, &s1, &a1);
  run(&c2, &s2, &a2);
  EXPECT_EQ(c1, c2);
  EXPECT_EQ(s1.freelist_pops, s2.freelist_pops);
  EXPECT_EQ(s1.bump_carves, s2.bump_carves);
  EXPECT_EQ(s1.slab_retires, s2.slab_retires);
  EXPECT_EQ(s1.segments_unmapped, s2.segments_unmapped);
  EXPECT_EQ(a1.mapped_bytes, a2.mapped_bytes);
  EXPECT_EQ(a1.bytes_live, a2.bytes_live);
}

}  // namespace
}  // namespace ngx
