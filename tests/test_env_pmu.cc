// Coverage for the Env facade, PMU bookkeeping, and machine config edges.
#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace ngx {
namespace {

TEST(Env, BulkBytesRoundTrip) {
  auto machine = MakeMachine(1);
  Env env(*machine, 0);
  std::vector<std::uint8_t> src(300);
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<std::uint8_t>(i);
  }
  env.StoreBytes(0x1000, src.data(), static_cast<std::uint32_t>(src.size()));
  std::vector<std::uint8_t> dst(src.size());
  env.LoadBytes(0x1000, dst.data(), static_cast<std::uint32_t>(dst.size()));
  EXPECT_EQ(src, dst);
  // 300 bytes starting line-aligned = 5 lines, once for stores, once for loads.
  EXPECT_EQ(machine->core(0).pmu().stores, 5u);
  EXPECT_EQ(machine->core(0).pmu().loads, 5u);
}

TEST(Env, TouchChargesWithoutPayload) {
  auto machine = MakeMachine(1);
  Env env(*machine, 0);
  env.TouchWrite(0x2000, 128);
  EXPECT_EQ(machine->core(0).pmu().stores, 2u);
  EXPECT_EQ(machine->memory().Read<std::uint64_t>(0x2000), 0u)
      << "touch must not fabricate data";
  env.TouchRead(0x2000, 1);
  EXPECT_EQ(machine->core(0).pmu().loads, 1u);
}

TEST(Env, UnalignedAccessSpanningLinesChargesBoth) {
  auto machine = MakeMachine(1);
  Env env(*machine, 0);
  env.Store<std::uint64_t>(0x103C, 42);  // crosses the 0x1040 line boundary
  EXPECT_EQ(machine->core(0).pmu().stores, 2u);
  EXPECT_EQ(env.Load<std::uint64_t>(0x103C), 42u);
}

TEST(Env, NowTracksCoreClock) {
  auto machine = MakeMachine(2);
  Env e0(*machine, 0);
  Env e1(*machine, 1);
  e0.Work(1000);
  EXPECT_GT(e0.now(), 0u);
  EXPECT_EQ(e1.now(), 0u) << "clocks are per core";
}

TEST(Pmu, AdditionIsFieldwise) {
  PmuCounters a;
  a.cycles = 10;
  a.loads = 3;
  a.llc_load_misses = 2;
  a.alloc_cycles = 5;
  PmuCounters b;
  b.cycles = 5;
  b.loads = 1;
  b.dtlb_store_misses = 7;
  const PmuCounters c = a + b;
  EXPECT_EQ(c.cycles, 15u);
  EXPECT_EQ(c.loads, 4u);
  EXPECT_EQ(c.llc_load_misses, 2u);
  EXPECT_EQ(c.dtlb_store_misses, 7u);
  EXPECT_EQ(c.alloc_cycles, 5u);
}

TEST(Pmu, MpkiAndSharesGuardDivideByZero) {
  PmuCounters p;
  EXPECT_EQ(p.LlcLoadMpki(), 0.0);
  EXPECT_EQ(p.Ipc(), 0.0);
  EXPECT_EQ(p.AllocCycleShare(), 0.0);
  p.instructions = 1000;
  p.llc_load_misses = 5;
  EXPECT_DOUBLE_EQ(p.LlcLoadMpki(), 5.0);
}

TEST(Pmu, ToStringMentionsKeyCounters) {
  PmuCounters p;
  p.cycles = 123;
  p.instructions = 456;
  const std::string s = p.ToString();
  EXPECT_NE(s.find("cycles=123"), std::string::npos);
  EXPECT_NE(s.find("LLC-load-misses"), std::string::npos);
  EXPECT_NE(s.find("dTLB-load-misses"), std::string::npos);
}

TEST(Machine, AllocScopeNests) {
  auto machine = MakeMachine(1);
  Env env(*machine, 0);
  {
    AllocScope outer(env);
    env.Work(10);
    {
      AllocScope inner(env);
      env.Work(10);
    }
    env.Work(10);
  }
  env.Work(10);
  EXPECT_EQ(machine->core(0).pmu().alloc_instructions, 30u);
  EXPECT_EQ(machine->core(0).pmu().instructions, 40u);
}

TEST(Machine, FractionalCpiAccumulatesExactly) {
  MachineConfig cfg = MachineConfig::Default(1);
  cfg.cores[0].cpi = 0.3;
  Machine machine(cfg);
  Env env(machine, 0);
  for (int i = 0; i < 1000; ++i) {
    env.Work(1);
  }
  // 1000 * 0.3 = 300 cycles; the sub-cycle accumulator bounds rounding
  // drift to below one cycle (0.3 is not exactly representable).
  EXPECT_NEAR(static_cast<double>(machine.core(0).now()), 300.0, 1.0);
}

TEST(Machine, HitmNotCountedWhenDisabled) {
  MachineConfig cfg = MachineConfig::Default(2);
  cfg.count_hitm_as_llc_miss = false;
  Machine machine(cfg);
  Env e0(machine, 0);
  Env e1(machine, 1);
  e0.Store<std::uint64_t>(0x1000, 1);
  e1.Load<std::uint64_t>(0x1000);
  EXPECT_EQ(machine.core(1).pmu().remote_hitm, 1u);
  EXPECT_EQ(machine.core(1).pmu().llc_load_misses, 0u);
}

TEST(Machine, ScaledWorkstationIsSmallerThanDefault) {
  const MachineConfig def = MachineConfig::Default(1);
  const MachineConfig scaled = MachineConfig::ScaledWorkstation(1);
  EXPECT_LT(scaled.llc.size_bytes, def.llc.size_bytes);
  EXPECT_LT(scaled.cores[0].l1d.size_bytes, def.cores[0].l1d.size_bytes);
  EXPECT_LT(scaled.cores[0].tlb.l2_entries, def.cores[0].tlb.l2_entries);
}

TEST(Machine, ArmA72LikeHasCheaperAtomics) {
  const MachineConfig a72 = MachineConfig::ArmA72Like(4);
  const MachineConfig def = MachineConfig::Default(4);
  EXPECT_LT(a72.atomic_rmw_latency, def.atomic_rmw_latency);
  EXPECT_EQ(a72.cores.size(), 4u);
}

TEST(Machine, RandomReplacementCachesStillCoherent) {
  MachineConfig cfg = MachineConfig::Default(2);
  for (auto& c : cfg.cores) {
    c.l1d.replacement = ReplacementKind::kRandom;
    c.l2.replacement = ReplacementKind::kFifo;
  }
  Machine machine(cfg);
  std::uint64_t shadow[64] = {};
  std::uint64_t x = 7;
  for (int i = 0; i < 4000; ++i) {
    x = x * 6364136223846793005ull + 1;
    const int core = static_cast<int>(x % 2);
    const std::size_t slot = (x >> 8) % 64;
    Env env(machine, core);
    if ((x >> 16) & 1) {
      shadow[slot] = x;
      env.Store<std::uint64_t>(0x5000 + slot * 64, x);
    } else {
      ASSERT_EQ(env.Load<std::uint64_t>(0x5000 + slot * 64), shadow[slot]);
    }
  }
}

TEST(Machine, SyscallChargesConfiguredCycles) {
  MachineConfig cfg = MachineConfig::Default(1);
  cfg.mmap_syscall_cycles = 9999;
  Machine machine(cfg);
  Env env(machine, 0);
  env.ChargeSyscall();
  EXPECT_GE(machine.core(0).now(), 9999u);
}

}  // namespace
}  // namespace ngx
