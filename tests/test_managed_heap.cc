// Tests for the mark-sweep managed heap (Section 3.3.2 GC extension).
#include <gtest/gtest.h>

#include "src/alloc/registry.h"
#include "src/core/managed_heap.h"
#include "tests/test_util.h"

namespace ngx {
namespace {

class ManagedHeapTest : public ::testing::Test {
 protected:
  void SetUp() override {
    machine_ = MakeMachine(2);
    alloc_ = CreateAllocator("tcmalloc", *machine_);
    heap_ = std::make_unique<ManagedHeap>(*alloc_);
  }

  std::unique_ptr<Machine> machine_;
  std::unique_ptr<Allocator> alloc_;
  std::unique_ptr<ManagedHeap> heap_;
};

TEST_F(ManagedHeapTest, AllocAndAccessObject) {
  Env env(*machine_, 0);
  const Addr obj = heap_->AllocObject(env, 2, 64);
  ASSERT_NE(obj, kNullAddr);
  EXPECT_EQ(heap_->GetRef(env, obj, 0), kNullAddr);
  heap_->SetRef(env, obj, 1, 0x1234);
  EXPECT_EQ(heap_->GetRef(env, obj, 1), 0x1234u);
  const Addr payload = ManagedHeap::PayloadAddr(env, obj);
  EXPECT_EQ(payload, obj + ManagedHeap::kHeaderBytes + 16);
  env.Store<std::uint64_t>(payload, 7);
  EXPECT_EQ(env.Load<std::uint64_t>(payload), 7u);
}

TEST_F(ManagedHeapTest, CollectReclaimsUnreachable) {
  Env env(*machine_, 0);
  const Addr root = heap_->AllocObject(env, 1, 16);
  const Addr kept = heap_->AllocObject(env, 0, 16);
  heap_->AllocObject(env, 0, 16);  // garbage
  heap_->AllocObject(env, 0, 16);  // garbage
  heap_->SetRef(env, root, 0, kept);
  heap_->AddRoot(root);
  const GcStats s = heap_->Collect(env);
  EXPECT_EQ(s.objects_marked, 2u);
  EXPECT_EQ(s.objects_swept, 2u);
  EXPECT_EQ(heap_->live_objects(), 2u);
  // Survivors remain usable.
  EXPECT_EQ(heap_->GetRef(env, root, 0), kept);
}

TEST_F(ManagedHeapTest, CyclesAreCollected) {
  Env env(*machine_, 0);
  const Addr a = heap_->AllocObject(env, 1, 8);
  const Addr b = heap_->AllocObject(env, 1, 8);
  heap_->SetRef(env, a, 0, b);
  heap_->SetRef(env, b, 0, a);  // unreachable cycle
  const GcStats s = heap_->Collect(env);
  EXPECT_EQ(s.objects_swept, 2u);
  EXPECT_EQ(heap_->live_objects(), 0u);
}

TEST_F(ManagedHeapTest, MarksClearBetweenCollections) {
  Env env(*machine_, 0);
  const Addr root = heap_->AllocObject(env, 0, 8);
  heap_->AddRoot(root);
  heap_->Collect(env);
  const GcStats s2 = heap_->Collect(env);
  EXPECT_EQ(s2.objects_marked, 1u) << "mark bit must have been cleared by the sweep";
  EXPECT_EQ(heap_->live_objects(), 1u);
}

TEST_F(ManagedHeapTest, DeepGraphSurvives) {
  Env env(*machine_, 0);
  Addr prev = heap_->AllocObject(env, 1, 8);
  heap_->AddRoot(prev);
  for (int i = 0; i < 500; ++i) {
    const Addr next = heap_->AllocObject(env, 1, 8);
    heap_->SetRef(env, prev, 0, next);
    prev = next;
  }
  const GcStats s = heap_->Collect(env);
  EXPECT_EQ(s.objects_marked, 501u);
  EXPECT_EQ(s.objects_swept, 0u);
}

TEST_F(ManagedHeapTest, ReclaimedMemoryIsReusable) {
  Env env(*machine_, 0);
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 100; ++i) {
      heap_->AllocObject(env, 2, 64);  // all garbage
    }
    heap_->Collect(env);
  }
  EXPECT_EQ(heap_->live_objects(), 0u);
  const AllocatorStats s = alloc_->stats();
  EXPECT_EQ(s.mallocs, s.frees + heap_->live_objects());
  EXPECT_LT(s.mapped_bytes, 32u << 20) << "memory recycles across GC rounds";
}

TEST_F(ManagedHeapTest, OffloadedCollectionChargesOtherCore) {
  Env mutator(*machine_, 0);
  Env collector(*machine_, 1);
  const Addr root = heap_->AllocObject(mutator, 1, 32);
  heap_->AddRoot(root);
  for (int i = 0; i < 200; ++i) {
    heap_->AllocObject(mutator, 1, 32);  // garbage
  }
  const std::uint64_t mutator_loads = machine_->core(0).pmu().loads;
  const GcStats s = heap_->Collect(collector);
  EXPECT_GT(s.objects_swept, 0u);
  EXPECT_EQ(machine_->core(0).pmu().loads, mutator_loads)
      << "offloaded GC must not touch the mutator core";
  EXPECT_GT(machine_->core(1).pmu().loads, 400u);
}

}  // namespace
}  // namespace ngx
