// Offload-fabric tests: routing policies, multi-client contention counter
// consistency, cross-shard free ownership, shard-count determinism, and the
// constructor argument checks that must fire in every build type.
#include <algorithm>

#include <gtest/gtest.h>

#include "src/alloc/layout.h"
#include "src/core/nextgen_malloc.h"
#include "src/workload/runner.h"
#include "src/workload/xmalloc.h"
#include "tests/test_util.h"

namespace ngx {
namespace {

// ---- RoutingPolicy units ----

std::vector<ShardLoad> FlatLoads(std::size_t n) { return std::vector<ShardLoad>(n); }

TEST(Routing, StaticByClientModsClientId) {
  auto p = MakeRoutingPolicy(RoutingKind::kStaticByClient);
  const auto loads = FlatLoads(3);
  EXPECT_EQ(p->Route(0, 64, 2, loads), 0);
  EXPECT_EQ(p->Route(4, 64, 2, loads), 1);
  EXPECT_EQ(p->Route(5, 4096, 9, loads), 2);
}

TEST(Routing, BySizeClassModsClassId) {
  auto p = MakeRoutingPolicy(RoutingKind::kBySizeClass);
  const auto loads = FlatLoads(2);
  EXPECT_EQ(p->Route(7, 64, 4, loads), 0);
  EXPECT_EQ(p->Route(7, 96, 5, loads), 1);
}

TEST(Routing, LeastLoadedPicksShallowestQueueThenEarliestClock) {
  auto p = MakeRoutingPolicy(RoutingKind::kLeastLoaded);
  std::vector<ShardLoad> loads(3);
  loads[0].queue_depth = 5;
  loads[1].queue_depth = 1;
  loads[2].queue_depth = 1;
  loads[1].server_now = 900;
  loads[2].server_now = 100;
  EXPECT_EQ(p->Route(0, 64, 2, loads), 2) << "shallowest queue, earliest clock";
  loads[2].server_now = 900;
  EXPECT_EQ(p->Route(0, 64, 2, loads), 1) << "full tie breaks to the lower shard id";
}

TEST(Routing, ParseRoundTrips) {
  for (const RoutingKind k : {RoutingKind::kStaticByClient, RoutingKind::kBySizeClass,
                              RoutingKind::kLeastLoaded}) {
    RoutingKind out;
    ASSERT_TRUE(ParseRoutingKind(RoutingKindName(k), &out));
    EXPECT_EQ(out, k);
  }
  RoutingKind out;
  EXPECT_FALSE(ParseRoutingKind("bogus", &out));
}

// ---- Multi-client contention: the counters must tell one coherent story ----

TEST(OffloadFabric, FourClientContentionCountersConsistent) {
  constexpr int kClients = 4;
  constexpr int kRounds = 50;
  auto machine = MakeMachine(kClients + 1);
  NgxSystem sys = MakeNgxSystem(*machine, NgxConfig::PaperPrototype(), kClients);
  std::vector<Env> envs;
  envs.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    envs.emplace_back(*machine, c);
  }

  std::vector<std::vector<Addr>> blocks(kClients);
  for (int round = 0; round < kRounds; ++round) {
    for (int c = 0; c < kClients; ++c) {
      const Addr a = sys.allocator->Malloc(envs[c], 64 + 16 * static_cast<std::uint64_t>(c));
      ASSERT_NE(a, kNullAddr);
      blocks[static_cast<std::size_t>(c)].push_back(a);
    }
  }
  for (int c = 0; c < kClients; ++c) {
    for (const Addr a : blocks[static_cast<std::size_t>(c)]) {
      sys.allocator->Free(envs[c], a);
    }
  }
  for (int c = 0; c < kClients; ++c) {
    sys.allocator->Flush(envs[c]);
  }
  sys.fabric->DrainAll();

  const AllocatorStats s = sys.allocator->stats();
  const OffloadEngineStats es = sys.fabric->TotalStats();
  EXPECT_EQ(s.mallocs, static_cast<std::uint64_t>(kClients) * kRounds);
  EXPECT_EQ(s.mallocs, s.frees);
  // Every malloc was a round trip; every Flush adds one kFlush per shard.
  EXPECT_EQ(es.sync_requests, sys.allocator->sync_mallocs() + kClients);
  // Every free rode a ring and was eventually drained.
  EXPECT_EQ(es.async_ops, s.frees);
  // Four clients hammering one server core must queue behind each other.
  EXPECT_GT(es.server_busy_waits, 0u);
  EXPECT_EQ(sys.fabric->QueueDepth(0), 0u) << "DrainAll leaves nothing pending";
}

TEST(OffloadFabric, FreeBurstFillsTheRing) {
  auto machine = MakeMachine(2);
  NgxConfig cfg = NgxConfig::PaperPrototype();  // ring_capacity = 64
  NgxSystem sys = MakeNgxSystem(*machine, cfg, 1);
  Env app(*machine, 0);
  std::vector<Addr> blocks;
  for (int i = 0; i < 200; ++i) {
    blocks.push_back(sys.allocator->Malloc(app, 64));
  }
  // A free burst with no intervening sync requests: the ring (64 slots) must
  // fill and the client must stall for the server to drain it.
  for (const Addr a : blocks) {
    sys.allocator->Free(app, a);
  }
  sys.fabric->DrainAll();
  const OffloadEngineStats es = sys.fabric->TotalStats();
  EXPECT_GT(es.ring_full_stalls, 0u);
  EXPECT_EQ(es.async_ops, 200u);
  EXPECT_EQ(sys.allocator->stats().frees, 200u);
}

// ---- Cross-shard frees drain at the owning shard ----

TEST(OffloadFabric, FreesDrainAtOwningShard) {
  auto machine = MakeMachine(4);  // clients 0-1, shards on cores 2-3
  NgxConfig cfg = NgxConfig::PaperPrototype();
  cfg.num_shards = 2;
  cfg.routing = RoutingKind::kBySizeClass;
  NgxSystem sys = MakeNgxSystem(*machine, cfg, 2);
  Env c0(*machine, 0);
  Env c1(*machine, 1);

  // Client 0 allocates a spread of size classes; BySizeClass scatters them
  // across both partitions.
  std::vector<Addr> owned_by[2];
  for (int i = 0; i < 40; ++i) {
    const Addr a = sys.allocator->Malloc(c0, 16 + 16 * static_cast<std::uint64_t>(i % 8));
    ASSERT_NE(a, kNullAddr);
    const int shard = sys.allocator->ShardOfAddr(a);
    ASSERT_TRUE(shard == 0 || shard == 1);
    owned_by[shard].push_back(a);
  }
  ASSERT_FALSE(owned_by[0].empty());
  ASSERT_FALSE(owned_by[1].empty());
  EXPECT_EQ(sys.allocator->shard_stats(0).mallocs, owned_by[0].size());
  EXPECT_EQ(sys.allocator->shard_stats(1).mallocs, owned_by[1].size());

  // Client 1 -- not the allocating client -- frees everything. Each block
  // must return to the shard owning its heap partition, not to the shard the
  // routing policy would pick for client 1.
  for (const std::vector<Addr>& batch : owned_by) {
    for (const Addr a : batch) {
      sys.allocator->Free(c1, a);
    }
  }
  sys.fabric->DrainAll();
  EXPECT_EQ(sys.allocator->shard_stats(0).frees, owned_by[0].size());
  EXPECT_EQ(sys.allocator->shard_stats(1).frees, owned_by[1].size());
  EXPECT_EQ(sys.fabric->shard_stats(0).async_ops, owned_by[0].size());
  EXPECT_EQ(sys.fabric->shard_stats(1).async_ops, owned_by[1].size());
}

TEST(OffloadFabric, LeastLoadedSpreadsWorkAcrossShards) {
  auto machine = MakeMachine(3);
  NgxConfig cfg = NgxConfig::PaperPrototype();
  cfg.num_shards = 2;
  cfg.routing = RoutingKind::kLeastLoaded;
  NgxSystem sys = MakeNgxSystem(*machine, cfg, 1);
  Env app(*machine, 0);
  std::vector<Addr> blocks;
  for (int i = 0; i < 100; ++i) {
    blocks.push_back(sys.allocator->Malloc(app, 64));
  }
  EXPECT_GT(sys.allocator->shard_stats(0).mallocs, 0u);
  EXPECT_GT(sys.allocator->shard_stats(1).mallocs, 0u);
  for (const Addr a : blocks) {
    sys.allocator->Free(app, a);
  }
  sys.fabric->DrainAll();
  EXPECT_EQ(sys.allocator->stats().frees, 100u);
}

// ---- Determinism: identical seeds give identical PMU totals per shard count ----

class ShardDeterminismTest : public ::testing::TestWithParam<int> {};

TEST_P(ShardDeterminismTest, SameSeedSameTotalPmu) {
  const int shards = GetParam();
  constexpr int kClients = 4;
  auto run = [&] {
    Machine machine(MachineConfig::Default(kClients + shards));
    NgxConfig cfg = NgxConfig::PaperPrototype();
    cfg.num_shards = shards;
    cfg.routing = RoutingKind::kLeastLoaded;  // the most state-dependent policy
    NgxSystem sys = MakeNgxSystem(machine, cfg, kClients);
    XmallocConfig c;
    c.ops_per_thread = 500;
    XmallocLike workload(c);
    RunOptions opt;
    opt.cores = FirstCores(kClients);
    for (int s = 0; s < shards; ++s) {
      opt.server_cores.push_back(kClients + s);
    }
    opt.seed = 42;
    RunWorkload(machine, *sys.allocator, workload, opt);
    sys.fabric->DrainAll();
    PmuCounters total;
    for (int core = 0; core < machine.num_cores(); ++core) {
      total += machine.core(core).pmu();
    }
    return total;
  };
  const PmuCounters a = run();
  const PmuCounters b = run();
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.loads, b.loads);
  EXPECT_EQ(a.stores, b.stores);
  EXPECT_EQ(a.atomic_rmws, b.atomic_rmws);
  EXPECT_EQ(a.llc_load_misses, b.llc_load_misses);
  EXPECT_EQ(a.llc_store_misses, b.llc_store_misses);
  EXPECT_EQ(a.dtlb_load_misses, b.dtlb_load_misses);
  EXPECT_EQ(a.dtlb_store_misses, b.dtlb_store_misses);
  EXPECT_EQ(a.remote_hitm, b.remote_hitm);
}

INSTANTIATE_TEST_SUITE_P(Shards, ShardDeterminismTest, ::testing::Values(1, 2, 4));

// ---- Constructor argument checks must abort in every build type ----

TEST(OffloadFabricDeath, ServerCoreOutOfRangeAborts) {
  auto machine = MakeMachine(2);
  EXPECT_DEATH_IF_SUPPORTED(
      OffloadEngine(*machine, /*server_core=*/7, kChannelBase, /*ring_capacity=*/16),
      "server core");
}

TEST(OffloadFabricDeath, RingCapacityBeyondStrideAborts) {
  auto machine = MakeMachine(2);
  EXPECT_DEATH_IF_SUPPORTED(
      OffloadEngine(*machine, /*server_core=*/1, kChannelBase, kMaxRingCapacity + 1),
      "ring capacity");
}

TEST(OffloadFabricDeath, DuplicateShardCoresAbort) {
  auto machine = MakeMachine(3);
  EXPECT_DEATH_IF_SUPPORTED(
      OffloadFabric(*machine, {1, 1}, kChannelBase, 16,
                    MakeRoutingPolicy(RoutingKind::kStaticByClient)),
      "distinct");
}

}  // namespace
}  // namespace ngx
