// Per-tenant traits + QoS lane tests (DESIGN.md §15):
//
//  * preset contract units: every TenantPreset parses/round-trips and fills
//    exactly the knobs its contract implies (explicit overrides win);
//  * registration-time resolution: presets and overrides land on the claimed
//    cores, unclaimed cores keep the global NgxConfig contract, numa_local
//    pins the home shard inside the client's cluster, and the fabric mirrors
//    lane/label/home for every claimed core;
//  * NGX_CHECK death tests for malformed traits: stash capacity below the
//    pipeline's two-half minimum, free_batch=0 with lanes on, unknown
//    preset, duplicate names, double-claimed cores, claimed server cores,
//    conflicting heap kinds on a shared shard, and a span donation in flight
//    between shards whose tenants bound conflicting carve layouts;
//  * lane admission behavior at the engine: DrainAll serves rings in
//    lane-priority order, a latency-lane sync never queues behind a bulk
//    tenant's expensive window (the shadow no-bulk schedule), and admission
//    is inert for a tenant running alone;
//  * per-tenant SLO plumbing: RunResult carries one sync-latency digest per
//    configured tenant, in NgxConfig::tenants order.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/nextgen_malloc.h"
#include "src/core/tenant_traits.h"
#include "src/offload/offload_engine.h"
#include "src/workload/churn.h"
#include "src/workload/runner.h"
#include "tests/test_util.h"

namespace ngx {
namespace {

constexpr std::uint64_t kMiB = 1024 * 1024;

// ---- Preset contract units ----

TEST(TenantTraitsUnit, PresetNamesRoundTrip) {
  for (const TenantPreset p :
       {TenantPreset::kDefault, TenantPreset::kLowLatency, TenantPreset::kThroughput,
        TenantPreset::kEphemeral, TenantPreset::kNumaLocal}) {
    TenantPreset out;
    ASSERT_TRUE(ParseTenantPreset(TenantPresetName(p), &out)) << TenantPresetName(p);
    EXPECT_EQ(out, p);
  }
  TenantPreset out;
  EXPECT_FALSE(ParseTenantPreset("turbo", &out));
  EXPECT_FALSE(ParseTenantPreset("", &out));
}

TEST(TenantTraitsUnit, LowLatencyContractRidesTheLatencyLaneUnbatched) {
  const TenantTraits t = MakeTenantTraits("low_latency");
  EXPECT_EQ(t.preset, TenantPreset::kLowLatency);
  EXPECT_EQ(t.lane, QosLane::kLatency);
  EXPECT_EQ(t.free_batch, 1u);
  EXPECT_EQ(t.stash_capacity, TenantTraits::kInherit);
  EXPECT_EQ(t.span_low_mark, TenantTraits::kInherit64);
  EXPECT_FALSE(t.has_heap_kind);
  EXPECT_EQ(t.home_shard, -1);
}

TEST(TenantTraitsUnit, ThroughputContractBatchesOnTheBulkLane) {
  const TenantTraits t = MakeTenantTraits("throughput");
  EXPECT_EQ(t.lane, QosLane::kBulk);
  EXPECT_EQ(t.free_batch, 16u);
  EXPECT_EQ(t.stash_capacity, TenantTraits::kInherit);
}

TEST(TenantTraitsUnit, EphemeralContractDeepensTheStash) {
  const TenantTraits t = MakeTenantTraits("ephemeral");
  EXPECT_EQ(t.lane, QosLane::kNormal);
  EXPECT_EQ(t.stash_capacity, 32u);
  EXPECT_EQ(t.free_batch, 8u);
}

TEST(TenantTraitsUnit, DefaultAndNumaLocalInheritEveryKnob) {
  for (const char* name : {"default", "numa_local"}) {
    const TenantTraits t = MakeTenantTraits(name);
    EXPECT_EQ(t.lane, QosLane::kNormal) << name;
    EXPECT_EQ(t.stash_capacity, TenantTraits::kInherit) << name;
    EXPECT_EQ(t.stash_refill_mark, TenantTraits::kInherit) << name;
    EXPECT_EQ(t.free_batch, TenantTraits::kInherit) << name;
    EXPECT_EQ(t.span_low_mark, TenantTraits::kInherit64) << name;
    EXPECT_EQ(t.span_high_mark, TenantTraits::kInherit64) << name;
    EXPECT_FALSE(t.has_heap_kind) << name;
    EXPECT_EQ(t.home_shard, -1) << name;
  }
}

TEST(TenantTraitsDeath, UnknownPresetAborts) {
  EXPECT_DEATH_IF_SUPPORTED((void)MakeTenantTraits("turbo"), "unknown tenant preset");
}

// ---- Registration-time resolution ----

// The four-tenant mix the QoS ablation uses, at test scale: a latency
// tenant and an overridden throughput tenant share shard 0, an ephemeral
// tenant rides shard 1, and core 1 stays on the implicit default contract.
NgxConfig TenantMixConfig() {
  NgxConfig cfg;  // offloaded, async frees, segregated metadata
  cfg.num_shards = 2;
  cfg.qos_lanes = true;
  cfg.lane_quantum = 8;
  TenantSpec fe;
  fe.name = "frontend";
  fe.traits = MakeTenantTraits("low_latency");
  fe.cores = {0};
  TenantSpec an;
  an.name = "analytics";
  an.traits = MakeTenantTraits("throughput");
  an.traits.free_batch = 32;  // explicit override beats the preset's 16
  an.cores = {2};
  TenantSpec ca;
  ca.name = "cache";
  ca.traits = MakeTenantTraits("ephemeral");
  ca.cores = {3};
  cfg.tenants = {fe, an, ca};
  return cfg;
}

TEST(TenantResolution, PresetsAndOverridesLandOnTheClaimedCores) {
  auto machine = MakeMachine(6);
  const NgxConfig cfg = TenantMixConfig();
  auto sys = MakeNgxSystem(*machine, cfg, {4, 5});
  const NgxAllocator& a = *sys.allocator;
  ASSERT_EQ(a.num_tenants(), 3);
  EXPECT_EQ(a.tenant_names()[0], "frontend");
  EXPECT_EQ(a.tenant_names()[1], "analytics");
  EXPECT_EQ(a.tenant_names()[2], "cache");
  EXPECT_EQ(a.tenant_of(0), 0);
  EXPECT_EQ(a.tenant_of(2), 1);
  EXPECT_EQ(a.tenant_of(3), 2);
  EXPECT_EQ(a.core_lane(0), QosLane::kLatency);
  EXPECT_EQ(a.core_free_batch(0), 1u);
  EXPECT_EQ(a.core_lane(2), QosLane::kBulk);
  EXPECT_EQ(a.core_free_batch(2), 32u) << "explicit override must beat the preset";
  EXPECT_EQ(a.core_stash_capacity(3), 32u) << "ephemeral deepens the stash";
  EXPECT_EQ(a.core_free_batch(3), 8u);
}

TEST(TenantResolution, UnclaimedCoresKeepTheGlobalContract) {
  auto machine = MakeMachine(6);
  const NgxConfig cfg = TenantMixConfig();
  auto sys = MakeNgxSystem(*machine, cfg, {4, 5});
  const NgxAllocator& a = *sys.allocator;
  EXPECT_EQ(a.tenant_of(1), -1) << "core 1 runs the implicit default tenant";
  EXPECT_EQ(a.core_lane(1), QosLane::kNormal);
  EXPECT_EQ(a.core_free_batch(1), cfg.free_batch);
  EXPECT_EQ(a.core_stash_capacity(1), cfg.stash_capacity);
  EXPECT_EQ(a.core_home_shard(1), -1);
}

TEST(TenantResolution, AllDefaultTenantListMatchesTheNoTenantResolution) {
  auto machine = MakeMachine(4);
  NgxConfig plain;
  plain.num_shards = 2;
  NgxConfig listed = plain;
  TenantSpec t;
  t.name = "default_tenant";
  t.cores = {0, 1};  // all knobs at kInherit
  listed.tenants = {t};
  auto sys_plain = MakeNgxSystem(*machine, plain, {2, 3});
  auto machine2 = MakeMachine(4);
  auto sys_listed = MakeNgxSystem(*machine2, listed, {2, 3});
  for (int c = 0; c < 2; ++c) {
    EXPECT_EQ(sys_plain.allocator->core_stash_capacity(c),
              sys_listed.allocator->core_stash_capacity(c));
    EXPECT_EQ(sys_plain.allocator->core_free_batch(c),
              sys_listed.allocator->core_free_batch(c));
    EXPECT_EQ(sys_plain.allocator->core_lane(c), sys_listed.allocator->core_lane(c));
    EXPECT_EQ(sys_plain.allocator->core_home_shard(c),
              sys_listed.allocator->core_home_shard(c));
  }
}

TEST(TenantResolution, NumaLocalPinsTheHomeShardIntoTheClientsCluster) {
  MachineConfig mc = MachineConfig::Default(4);
  mc.cluster_cores = 2;  // clusters {0,1} and {2,3}
  Machine machine(mc);
  NgxConfig cfg;
  cfg.num_shards = 2;
  TenantSpec near;
  near.name = "pinned";
  near.traits = MakeTenantTraits("numa_local");
  near.cores = {2};  // shares cluster 1 with server core 3 (shard 1)
  cfg.tenants = {near};
  auto sys = MakeNgxSystem(machine, cfg, {1, 3});
  EXPECT_EQ(sys.allocator->core_home_shard(2), 1)
      << "numa_local must resolve to the shard whose server shares the cluster";
  // The pin routes this tenant's mallocs to its contracted shard.
  Env env(machine, 2);
  const Addr a = sys.allocator->Malloc(env, 64);
  ASSERT_NE(a, kNullAddr);
  EXPECT_EQ(sys.allocator->ShardOfAddr(a), 1);
  sys.allocator->Free(env, a);
  sys.allocator->Flush(env);
  sys.fabric->DrainAll();
  EXPECT_EQ(sys.allocator->stats().mallocs, sys.allocator->stats().frees);
}

TEST(TenantResolution, ExplicitHomeShardPinWins) {
  auto machine = MakeMachine(4);
  NgxConfig cfg;
  cfg.num_shards = 2;
  TenantSpec t;
  t.name = "pinned";
  t.traits.home_shard = 1;
  t.cores = {0};  // static route would be shard 0
  cfg.tenants = {t};
  auto sys = MakeNgxSystem(*machine, cfg, {2, 3});
  EXPECT_EQ(sys.allocator->core_home_shard(0), 1);
  Env env(*machine, 0);
  const Addr a = sys.allocator->Malloc(env, 64);
  ASSERT_NE(a, kNullAddr);
  EXPECT_EQ(sys.allocator->ShardOfAddr(a), 1);
  sys.allocator->Free(env, a);
  sys.allocator->Flush(env);
  sys.fabric->DrainAll();
}

TEST(TenantResolution, WatermarkOverridesBindToTheHomeShard) {
  auto machine = MakeMachine(4);
  NgxConfig cfg;
  cfg.num_shards = 2;
  cfg.hugepage_spans = false;
  cfg.heap_window = 16 * kMiB;
  cfg.span_donation = true;
  cfg.span_low_mark = 8;
  cfg.span_high_mark = 16;
  TenantSpec t;
  t.name = "greedy";
  t.traits.span_low_mark = 24;
  t.traits.span_high_mark = 48;
  t.cores = {1};  // static route: shard 1
  cfg.tenants = {t};
  auto sys = MakeNgxSystem(*machine, cfg, {2, 3});
  EXPECT_EQ(sys.allocator->shard_low_mark(0), 8u);
  EXPECT_EQ(sys.allocator->shard_high_mark(0), 16u);
  EXPECT_EQ(sys.allocator->shard_low_mark(1), 24u);
  EXPECT_EQ(sys.allocator->shard_high_mark(1), 48u);
}

// ---- Malformed-traits death tests ----

TEST(TenantConfigDeath, StashBelowThePipelineTwoHalfMinimumAborts) {
  auto machine = MakeMachine(3);
  NgxConfig cfg;
  cfg.prediction = true;
  cfg.stash_pipeline = true;  // stash layout needs two kPipeHalfCap halves
  TenantSpec t;
  t.name = "tiny";
  t.traits.stash_capacity = 2 * NgxAllocator::kPipeHalfCap - 1;
  t.cores = {0};
  cfg.tenants = {t};
  EXPECT_DEATH_IF_SUPPORTED((void)MakeNgxSystem(*machine, cfg, 2), "two-half minimum");
}

TEST(TenantConfigDeath, ZeroFreeBatchWithLanesOnAborts) {
  auto machine = MakeMachine(3);
  NgxConfig cfg;
  cfg.qos_lanes = true;
  TenantSpec t;
  t.name = "stuck";
  t.traits.free_batch = 0;
  t.cores = {0};
  cfg.tenants = {t};
  EXPECT_DEATH_IF_SUPPORTED((void)MakeNgxSystem(*machine, cfg, 2),
                            "free_batch=0 with QoS lanes on");
}

TEST(TenantConfigDeath, QosLanesNeedANonzeroQuantum) {
  auto machine = MakeMachine(3);
  NgxConfig cfg;
  cfg.qos_lanes = true;
  cfg.lane_quantum = 0;
  EXPECT_DEATH_IF_SUPPORTED((void)MakeNgxSystem(*machine, cfg, 2), "lane_quantum");
}

TEST(TenantConfigDeath, DuplicateTenantNameAborts) {
  auto machine = MakeMachine(3);
  NgxConfig cfg;
  TenantSpec a;
  a.name = "twin";
  a.cores = {0};
  TenantSpec b;
  b.name = "twin";
  b.cores = {1};
  cfg.tenants = {a, b};
  EXPECT_DEATH_IF_SUPPORTED((void)MakeNgxSystem(*machine, cfg, 2), "duplicate tenant name");
}

TEST(TenantConfigDeath, CoreClaimedByTwoTenantsAborts) {
  auto machine = MakeMachine(3);
  NgxConfig cfg;
  TenantSpec a;
  a.name = "first";
  a.cores = {0};
  TenantSpec b;
  b.name = "second";
  b.cores = {0};
  cfg.tenants = {a, b};
  EXPECT_DEATH_IF_SUPPORTED((void)MakeNgxSystem(*machine, cfg, 2), "claimed by two tenants");
}

TEST(TenantConfigDeath, ClaimingAServerCoreAborts) {
  auto machine = MakeMachine(3);
  NgxConfig cfg;
  TenantSpec t;
  t.name = "greedy";
  t.cores = {2};  // the shard server core
  cfg.tenants = {t};
  EXPECT_DEATH_IF_SUPPORTED((void)MakeNgxSystem(*machine, cfg, 2), "server core");
}

TEST(TenantConfigDeath, ConflictingHeapKindsOnASharedShardAbort) {
  auto machine = MakeMachine(4);
  NgxConfig cfg;
  cfg.num_shards = 1;  // both tenants meet on shard 0
  TenantSpec seg;
  seg.name = "segment_tenant";
  seg.traits.has_heap_kind = true;
  seg.traits.heap_kind = HeapKind::kSegment;
  seg.cores = {0};
  TenantSpec cls;
  cls.name = "classic_tenant";
  cls.traits.has_heap_kind = true;
  cls.traits.heap_kind = HeapKind::kSegregated;
  cls.cores = {1};
  cfg.tenants = {seg, cls};
  EXPECT_DEATH_IF_SUPPORTED((void)MakeNgxSystem(*machine, cfg, 3),
                            "conflicting heap kinds");
}

// A tenant's carve-layout contract must also hold against the span economy
// at runtime: a donation in flight between shards of different kinds would
// graft a span whose block metadata layout does not survive the move.
TEST(TenantConfigDeath, SpanDonationBetweenConflictingHeapKindsAborts) {
  auto machine = MakeMachine(4);
  NgxConfig cfg;
  cfg.num_shards = 2;
  cfg.hugepage_spans = false;
  cfg.heap_window = 8 * kMiB;
  cfg.span_donation = true;
  TenantSpec seg;
  seg.name = "segment_tenant";
  seg.traits.has_heap_kind = true;
  seg.traits.heap_kind = HeapKind::kSegment;
  seg.cores = {0};  // homes on shard 0; shard 1 keeps the global kSegregated
  cfg.tenants = {seg};
  auto sys = MakeNgxSystem(*machine, cfg, {2, 3});
  ASSERT_EQ(sys.allocator->shard_heap_kind(0), HeapKind::kSegment);
  ASSERT_EQ(sys.allocator->shard_heap_kind(1), HeapKind::kSegregated);
  Env env(*machine, 0);
  // arg = (want << 8) | requester: shard 0 asks shard 1 to donate one span.
  EXPECT_DEATH_IF_SUPPORTED(
      (void)sys.fabric->SyncRequest(env, 1, OffloadOp::kRequestSpans, (1ull << 8) | 0),
      "conflicting heap kinds");
}

// ---- Lane admission at the engine ----

constexpr Addr kQosChannelBase = 0x0700'0000'0000ull;

// Records the order clients were served in, with a tunable per-request cost.
class OrderRecordingServer : public OffloadServer {
 public:
  std::uint64_t HandleRequest(Env& env, int client, OffloadOp op,
                              std::uint64_t arg) override {
    env.Work(work_per_request);
    served.push_back(client);
    (void)op;
    return arg + 1;
  }

  std::uint64_t work_per_request = 50;
  std::vector<int> served;
};

struct EngineRig {
  std::unique_ptr<Machine> machine;
  std::unique_ptr<OffloadEngine> engine;
  OrderRecordingServer server;

  explicit EngineRig(int cores = 4) {
    machine = MakeMachine(cores);
    machine->address_map().Add(Region{kQosChannelBase,
                                      kChannelStride * static_cast<std::uint64_t>(cores),
                                      PageKind::kSmall4K, "chan"});
    engine = std::make_unique<OffloadEngine>(*machine, /*server_core=*/cores - 1,
                                             kQosChannelBase, /*ring_capacity=*/16);
    engine->set_server(&server);
  }
};

TEST(QosLaneAdmission, DrainAllServesRingsInLanePriorityOrder) {
  EngineRig rig;
  rig.engine->set_client_lane(0, QosLane::kBulk);
  rig.engine->set_client_lane(1, QosLane::kLatency);
  rig.engine->set_client_lane(2, QosLane::kNormal);
  rig.engine->set_lane_admission(8);
  Env bulk(*rig.machine, 0);
  Env lat(*rig.machine, 1);
  Env norm(*rig.machine, 2);
  // Bulk pushes first; client index order would also favor it.
  rig.engine->AsyncRequest(bulk, OffloadOp::kFree, 1);
  rig.engine->AsyncRequest(norm, OffloadOp::kFree, 2);
  rig.engine->AsyncRequest(lat, OffloadOp::kFree, 3);
  rig.engine->DrainAll();
  ASSERT_EQ(rig.server.served.size(), 3u);
  EXPECT_EQ(rig.server.served[0], 1) << "latency lane drains first";
  EXPECT_EQ(rig.server.served[1], 2) << "normal lane drains second";
  EXPECT_EQ(rig.server.served[2], 0) << "bulk lane drains last";
}

TEST(QosLaneAdmission, DrainAllKeepsClientOrderWhenAdmissionIsOff) {
  EngineRig rig;
  rig.engine->set_client_lane(0, QosLane::kBulk);
  rig.engine->set_client_lane(1, QosLane::kLatency);
  // Classification alone never changes behavior: quantum stays 0.
  Env bulk(*rig.machine, 0);
  Env lat(*rig.machine, 1);
  rig.engine->AsyncRequest(bulk, OffloadOp::kFree, 1);
  rig.engine->AsyncRequest(lat, OffloadOp::kFree, 2);
  rig.engine->DrainAll();
  ASSERT_EQ(rig.server.served.size(), 2u);
  EXPECT_EQ(rig.server.served[0], 0);
  EXPECT_EQ(rig.server.served[1], 1);
}

// The observed round-trip of a latency-lane sync issued right after a bulk
// tenant's expensive window: with admission on, the shadow no-bulk schedule
// serves it as if the bulk window had been deferred.
std::uint64_t LatencySyncBehindBulkWindow(bool lanes_on) {
  EngineRig rig;
  rig.engine->set_client_lane(0, QosLane::kBulk);
  rig.engine->set_client_lane(1, QosLane::kLatency);
  if (lanes_on) {
    rig.engine->set_lane_admission(8);
  }
  Env bulk(*rig.machine, 0);
  Env lat(*rig.machine, 1);
  // The bulk request runs the server clock far ahead of the latency client.
  rig.server.work_per_request = 5000;
  rig.engine->SyncRequest(bulk, OffloadOp::kMalloc, 1);
  rig.server.work_per_request = 50;
  const std::uint64_t t0 = lat.now();
  rig.engine->SyncRequest(lat, OffloadOp::kMalloc, 2);
  return lat.now() - t0;
}

TEST(QosLaneAdmission, LatencySyncNeverQueuesBehindABulkWindow) {
  const std::uint64_t off = LatencySyncBehindBulkWindow(false);
  const std::uint64_t on = LatencySyncBehindBulkWindow(true);
  // The bulk handler's Work(5000) dominates the lanes-off round trip
  // (whatever the core's CPI makes of it); with admission on the latency
  // sync must not see that window at all -- only its own ~Work(50) service.
  EXPECT_GT(off, 2000u) << "lanes off, the sync queues behind the bulk service";
  EXPECT_LT(2 * on, off) << "lanes on, the bulk window is deferred past the doorbell";
  EXPECT_LT(on, 1000u);
}

// A latency tenant running alone sees the same clocks with admission on or
// off: the shadow schedule degenerates to the real one when there is no
// bulk work to defer.
TEST(QosLaneAdmission, AdmissionIsInertForATenantRunningAlone) {
  auto run = [](bool lanes_on) {
    EngineRig rig;
    rig.engine->set_client_lane(0, QosLane::kLatency);
    if (lanes_on) {
      rig.engine->set_lane_admission(8);
    }
    Env env(*rig.machine, 0);
    for (int i = 0; i < 20; ++i) {
      rig.engine->SyncRequest(env, OffloadOp::kMalloc, static_cast<std::uint64_t>(i));
      rig.engine->AsyncRequest(env, OffloadOp::kFree, static_cast<std::uint64_t>(i));
    }
    rig.engine->DrainAll();
    return std::make_pair(env.now(), rig.machine->core(rig.machine->num_cores() - 1).now());
  };
  EXPECT_EQ(run(false), run(true));
}

// ---- Per-tenant SLO plumbing ----

TEST(TenantSlo, RunResultCarriesOneDigestPerTenantInConfigOrder) {
  Machine machine(MachineConfig::Default(6));
  TelemetryConfig tc;
  tc.enabled = true;
  machine.EnableTelemetry(tc);
  const NgxConfig cfg = TenantMixConfig();
  auto sys = MakeNgxSystem(machine, cfg, {4, 5});
  ChurnConfig wl;
  wl.live_blocks = 80;
  wl.ops = 600;
  Churn workload(wl);
  RunOptions opt;
  opt.cores = {0, 1, 2, 3};
  opt.server_cores = {4, 5};
  opt.seed = 3;
  const RunResult r = RunWorkload(machine, *sys.allocator, workload, opt);
  sys.fabric->DrainAll();
  ASSERT_EQ(r.tenant_names.size(), 3u);
  ASSERT_EQ(r.tenant_sync_latency.size(), 3u);
  EXPECT_EQ(r.tenant_names[0], "frontend");
  EXPECT_EQ(r.tenant_names[1], "analytics");
  EXPECT_EQ(r.tenant_names[2], "cache");
  for (std::size_t t = 0; t < r.tenant_names.size(); ++t) {
    EXPECT_GT(r.tenant_sync_latency[t].count, 0u)
        << r.tenant_names[t] << " must have recorded sync round trips";
    EXPECT_GE(r.tenant_sync_latency[t].p99, r.tenant_sync_latency[t].p50)
        << r.tenant_names[t];
  }
  const AllocatorStats s = sys.allocator->stats();
  EXPECT_EQ(s.mallocs, s.frees);
}

TEST(TenantSlo, NoTenantsMeansNoDigests) {
  Machine machine(MachineConfig::Default(3));
  TelemetryConfig tc;
  tc.enabled = true;
  machine.EnableTelemetry(tc);
  auto sys = MakeNgxSystem(machine, NgxConfig::PaperPrototype(), 2);
  ChurnConfig wl;
  wl.live_blocks = 40;
  wl.ops = 200;
  Churn workload(wl);
  RunOptions opt;
  opt.cores = {0, 1};
  opt.server_cores = {2};
  const RunResult r = RunWorkload(machine, *sys.allocator, workload, opt);
  sys.fabric->DrainAll();
  EXPECT_TRUE(r.tenant_names.empty());
  EXPECT_TRUE(r.tenant_sync_latency.empty());
}

}  // namespace
}  // namespace ngx
