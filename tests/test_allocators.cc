// Property tests shared by every baseline allocator (and both NextGen
// layouts, which register through the same interface).
#include <gtest/gtest.h>

#include "src/alloc/registry.h"
#include "src/core/nextgen_malloc.h"
#include "tests/test_util.h"

namespace ngx {
namespace {

struct AllocatorCase {
  std::string name;
};

class AllocatorPropertyTest : public ::testing::TestWithParam<AllocatorCase> {
 protected:
  void SetUp() override {
    machine_ = MakeMachine(4);
    if (GetParam().name == "nextgen") {
      NgxConfig cfg;
      sys_ = MakeNgxSystem(*machine_, cfg);
      alloc_ = sys_.allocator.get();
    } else if (GetParam().name == "nextgen-inline") {
      NgxConfig cfg;
      cfg.offload = false;
      cfg.remove_atomics = false;  // multi-thread inline requires the lock
      sys_ = MakeNgxSystem(*machine_, cfg);
      alloc_ = sys_.allocator.get();
    } else {
      owned_ = CreateAllocator(GetParam().name, *machine_);
      alloc_ = owned_.get();
    }
  }

  // NextGen's dedicated core is 3; use cores 0-2 for the app.
  int app_core(int i = 0) const { return i; }

  std::unique_ptr<Machine> machine_;
  std::unique_ptr<Allocator> owned_;
  NgxSystem sys_;
  Allocator* alloc_ = nullptr;
};

TEST_P(AllocatorPropertyTest, BasicAllocFree) {
  Env env(*machine_, app_core());
  const Addr a = alloc_->Malloc(env, 100);
  ASSERT_NE(a, kNullAddr);
  EXPECT_EQ(a % 16, 0u);
  EXPECT_GE(alloc_->UsableSize(env, a), 100u);
  env.Store<std::uint64_t>(a, 42);
  EXPECT_EQ(env.Load<std::uint64_t>(a), 42u);
  alloc_->Free(env, a);
}

TEST_P(AllocatorPropertyTest, ZeroAndTinySizes) {
  Env env(*machine_, app_core());
  const Addr z = alloc_->Malloc(env, 0);
  ASSERT_NE(z, kNullAddr);
  const Addr t = alloc_->Malloc(env, 1);
  ASSERT_NE(t, kNullAddr);
  EXPECT_NE(z, t);
  alloc_->Free(env, z);
  alloc_->Free(env, t);
}

TEST_P(AllocatorPropertyTest, FreeNullIsNoop) {
  Env env(*machine_, app_core());
  alloc_->Free(env, kNullAddr);
  EXPECT_EQ(alloc_->stats().frees, 0u);
}

TEST_P(AllocatorPropertyTest, LargeAllocations) {
  Env env(*machine_, app_core());
  for (const std::uint64_t size :
       {std::uint64_t{40000}, std::uint64_t{200000}, std::uint64_t{1500000}}) {
    const Addr a = alloc_->Malloc(env, size);
    ASSERT_NE(a, kNullAddr) << size;
    EXPECT_GE(alloc_->UsableSize(env, a), size);
    env.Store<std::uint64_t>(a + size - 8, 7);  // touch the far end
    alloc_->Free(env, a);
  }
}

TEST_P(AllocatorPropertyTest, RandomOpsPreserveInvariants) {
  ShadowHeapExerciser ex(*machine_, *alloc_, 12345);
  ex.Run(app_core(), 3000, 300);
  ex.FreeAll(app_core());
}

TEST_P(AllocatorPropertyTest, RandomOpsLargeSizes) {
  ShadowHeapExerciser ex(*machine_, *alloc_, 999);
  ex.Run(app_core(), 400, 60, 1024, 200000);
  ex.FreeAll(app_core());
}

TEST_P(AllocatorPropertyTest, MemoryIsRecycled) {
  Env env(*machine_, app_core());
  // Steady-state churn must not grow the footprint without bound.
  std::vector<Addr> blocks;
  for (int i = 0; i < 64; ++i) {
    blocks.push_back(alloc_->Malloc(env, 128));
  }
  const std::uint64_t mapped_after_warmup = alloc_->stats().mapped_bytes;
  for (int round = 0; round < 200; ++round) {
    for (Addr& b : blocks) {
      alloc_->Free(env, b);
      b = alloc_->Malloc(env, 128);
      ASSERT_NE(b, kNullAddr);
    }
  }
  alloc_->Flush(env);
  EXPECT_LE(alloc_->stats().mapped_bytes, mapped_after_warmup + (8u << 20))
      << "churn should reuse memory, not map unboundedly";
  for (const Addr b : blocks) {
    alloc_->Free(env, b);
  }
}

TEST_P(AllocatorPropertyTest, CrossThreadFree) {
  Env producer(*machine_, app_core(0));
  Env consumer(*machine_, app_core(1));
  std::vector<Addr> blocks;
  for (int i = 0; i < 500; ++i) {
    const Addr a = alloc_->Malloc(producer, 64 + (i % 5) * 32);
    ASSERT_NE(a, kNullAddr);
    producer.Store<std::uint64_t>(a, i);
    blocks.push_back(a);
  }
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    ASSERT_EQ(consumer.Load<std::uint64_t>(blocks[i]), i);
    alloc_->Free(consumer, blocks[i]);
  }
  alloc_->Flush(consumer);
  alloc_->Flush(producer);
  // Blocks must be reusable afterwards.
  ShadowHeapExerciser ex(*machine_, *alloc_, 77);
  ex.Run(app_core(0), 500, 100);
  ex.FreeAll(app_core(0));
}

TEST_P(AllocatorPropertyTest, ManyThreadsInterleaved) {
  ShadowHeapExerciser ex0(*machine_, *alloc_, 1);
  ShadowHeapExerciser ex1(*machine_, *alloc_, 2);
  ShadowHeapExerciser ex2(*machine_, *alloc_, 3);
  for (int round = 0; round < 10; ++round) {
    ex0.Run(app_core(0), 100, 64);
    ex1.Run(app_core(1), 100, 64);
    ex2.Run(app_core(2), 100, 64);
  }
  ex0.FreeAll(app_core(0));
  ex1.FreeAll(app_core(1));
  ex2.FreeAll(app_core(2));
}

TEST_P(AllocatorPropertyTest, StatsAreConsistent) {
  Env env(*machine_, app_core());
  const Addr a = alloc_->Malloc(env, 100);
  const Addr b = alloc_->Malloc(env, 200);
  AllocatorStats s = alloc_->stats();
  EXPECT_EQ(s.mallocs, 2u);
  EXPECT_EQ(s.frees, 0u);
  EXPECT_GE(s.bytes_live, 300u);
  EXPECT_GT(s.mapped_bytes, 0u);
  alloc_->Free(env, a);
  alloc_->Free(env, b);
  alloc_->Flush(env);
  s = alloc_->stats();
  EXPECT_EQ(s.frees, 2u);
  EXPECT_LT(s.bytes_live, 300u);
}

INSTANTIATE_TEST_SUITE_P(Allocators, AllocatorPropertyTest,
                         ::testing::Values(AllocatorCase{"ptmalloc2"}, AllocatorCase{"jemalloc"},
                                           AllocatorCase{"tcmalloc"}, AllocatorCase{"mimalloc"},
                                           AllocatorCase{"nextgen"},
                                           AllocatorCase{"nextgen-inline"}),
                         [](const ::testing::TestParamInfo<AllocatorCase>& info) {
                           std::string n = info.param.name;
                           for (char& c : n) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return n;
                         });

}  // namespace
}  // namespace ngx
