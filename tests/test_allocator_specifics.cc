// Structural tests specific to each baseline allocator's architecture.
#include <gtest/gtest.h>

#include "src/alloc/jemalloc/je_allocator.h"
#include "src/alloc/layout.h"
#include "src/alloc/mimalloc/mi_allocator.h"
#include "src/alloc/ptmalloc/pt_allocator.h"
#include "src/alloc/tcmalloc/tc_allocator.h"
#include "tests/test_util.h"

namespace ngx {
namespace {

// ---------------------------------------------------------------- ptmalloc
TEST(PtAllocator, CoalescingReassemblesNeighbors) {
  auto machine = MakeMachine(1);
  PtConfig cfg;
  cfg.use_fastbins = false;  // test the boundary-tag path directly
  PtAllocator pt(*machine, kPtHeapBase, cfg);
  Env env(*machine, 0);
  // Three adjacent chunks; freeing all three must coalesce into one block
  // that can serve a request bigger than any single piece.
  const Addr a = pt.Malloc(env, 200);
  const Addr b = pt.Malloc(env, 200);
  const Addr c = pt.Malloc(env, 200);
  const Addr guard = pt.Malloc(env, 200);  // keeps top away
  ASSERT_EQ(b - a, 208u);  // adjacent chunks: distance = chunk size
  pt.Free(env, a);
  pt.Free(env, c);
  pt.Free(env, b);  // middle: merges both ways
  const Addr big = pt.Malloc(env, 500);
  EXPECT_EQ(big, a) << "coalesced block should be reused in place";
  pt.Free(env, big);
  pt.Free(env, guard);
}

TEST(PtAllocator, SplitLeavesUsableRemainder) {
  auto machine = MakeMachine(1);
  PtConfig cfg;
  cfg.use_fastbins = false;
  PtAllocator pt(*machine, kPtHeapBase, cfg);
  Env env(*machine, 0);
  const Addr big = pt.Malloc(env, 1000);
  const Addr guard = pt.Malloc(env, 64);
  pt.Free(env, big);
  const Addr small = pt.Malloc(env, 100);
  EXPECT_EQ(small, big) << "small request splits the binned chunk";
  const Addr rest = pt.Malloc(env, 700);
  EXPECT_GT(rest, small);
  EXPECT_LT(rest, guard) << "remainder reused before growing the heap";
  pt.Free(env, small);
  pt.Free(env, rest);
  pt.Free(env, guard);
}

TEST(PtAllocator, LargeRequestsAreMmapped) {
  auto machine = MakeMachine(1);
  PtAllocator pt(*machine, kPtHeapBase);
  Env env(*machine, 0);
  const std::uint64_t mapped_before = pt.stats().mapped_bytes;
  const Addr a = pt.Malloc(env, 512 * 1024);
  ASSERT_NE(a, kNullAddr);
  EXPECT_GT(pt.stats().mapped_bytes, mapped_before + 500 * 1024);
  pt.Free(env, a);
  EXPECT_LE(pt.stats().mapped_bytes, mapped_before) << "munmapped on free";
}

TEST(PtAllocator, FastbinsDeferCoalescing) {
  auto machine = MakeMachine(1);
  PtConfig cfg;
  cfg.consolidate_threshold = 1000000;  // never by count
  PtAllocator pt(*machine, kPtHeapBase, cfg);
  Env env(*machine, 0);
  const Addr a = pt.Malloc(env, 40);
  const Addr b = pt.Malloc(env, 40);
  (void)b;
  pt.Free(env, a);
  // LIFO exact reuse without any coalescing work.
  EXPECT_EQ(pt.Malloc(env, 40), a);
  EXPECT_EQ(pt.consolidations(), 0u);
  // A large request triggers malloc_consolidate.
  pt.Free(env, a);
  const Addr big = pt.Malloc(env, 2000);
  EXPECT_EQ(pt.consolidations(), 1u);
  pt.Free(env, big);
}

TEST(PtAllocator, ConsolidationByThreshold) {
  auto machine = MakeMachine(1);
  PtConfig cfg;
  cfg.consolidate_threshold = 16;
  PtAllocator pt(*machine, kPtHeapBase, cfg);
  Env env(*machine, 0);
  std::vector<Addr> blocks;
  for (int i = 0; i < 32; ++i) {
    blocks.push_back(pt.Malloc(env, 40));
  }
  for (const Addr b : blocks) {
    pt.Free(env, b);
  }
  EXPECT_GE(pt.consolidations(), 1u);
  // Everything must still be reusable afterwards.
  const Addr big = pt.Malloc(env, 900);
  EXPECT_NE(big, kNullAddr);
}

// ---------------------------------------------------------------- jemalloc
TEST(JeAllocator, SameClassSharesChunk) {
  auto machine = MakeMachine(1);
  JeAllocator je(*machine, kJeHeapBase);
  Env env(*machine, 0);
  const Addr a = je.Malloc(env, 100);
  const Addr b = je.Malloc(env, 100);
  EXPECT_EQ(AlignDown(a, 64 * 1024), AlignDown(b, 64 * 1024))
      << "same-class regions come from the same run";
  EXPECT_EQ(b - a, 112u) << "regions are class-size spaced";
}

TEST(JeAllocator, DifferentArenasForDifferentCores) {
  auto machine = MakeMachine(4);
  JeAllocator je(*machine, kJeHeapBase, JeConfig{});
  Env e0(*machine, 0);
  Env e1(*machine, 1);
  const Addr a = je.Malloc(e0, 100);
  const Addr b = je.Malloc(e1, 100);
  EXPECT_NE(AlignDown(a, 64 * 1024), AlignDown(b, 64 * 1024))
      << "different arenas use different chunks";
  // Cross-arena free must work.
  je.Free(e0, b);
  je.Free(e1, a);
}

TEST(JeAllocator, LowestRegionFirstReuse) {
  auto machine = MakeMachine(1);
  JeAllocator je(*machine, kJeHeapBase);
  Env env(*machine, 0);
  std::vector<Addr> blocks;
  for (int i = 0; i < 10; ++i) {
    blocks.push_back(je.Malloc(env, 100));
  }
  je.Free(env, blocks[7]);
  je.Free(env, blocks[2]);
  EXPECT_EQ(je.Malloc(env, 100), blocks[2]) << "bitmap find-first-clear reuses lowest index";
}

TEST(JeAllocator, EmptyChunkRecycledForOtherClasses) {
  auto machine = MakeMachine(1);
  JeAllocator je(*machine, kJeHeapBase);
  Env env(*machine, 0);
  // Fill two chunks of one class, then free everything: one chunk is kept,
  // the other recycled through the arena's chunk stack.
  std::vector<Addr> blocks;
  for (int i = 0; i < 1200; ++i) {  // > one 64 KiB chunk of 112-byte regions
    blocks.push_back(je.Malloc(env, 100));
  }
  for (const Addr b : blocks) {
    je.Free(env, b);
  }
  const std::uint64_t mapped = je.stats().mapped_bytes;
  // A different class must be able to reuse the recycled chunk without
  // growing the footprint.
  std::vector<Addr> other;
  for (int i = 0; i < 200; ++i) {
    other.push_back(je.Malloc(env, 500));
  }
  EXPECT_LE(je.stats().mapped_bytes, mapped + 2 * 1024 * 1024);
  for (const Addr b : other) {
    je.Free(env, b);
  }
}

// ---------------------------------------------------------------- tcmalloc
TEST(TcAllocator, ThreadCacheHitsAvoidCentral) {
  auto machine = MakeMachine(2);
  TcAllocator tc(*machine, kTcHeapBase, kTcMetaBase);
  Env env(*machine, 0);
  const Addr a = tc.Malloc(env, 64);
  tc.Free(env, a);
  const std::uint64_t atomics_before = machine->core(0).pmu().atomic_rmws;
  // A hit in the per-core cache must not acquire any central lock.
  const Addr b = tc.Malloc(env, 64);
  EXPECT_EQ(b, a) << "LIFO thread-cache reuse";
  EXPECT_EQ(machine->core(0).pmu().atomic_rmws, atomics_before);
  tc.Free(env, b);
}

TEST(TcAllocator, SpansAreHugepageBacked) {
  auto machine = MakeMachine(1);
  TcAllocator tc(*machine, kTcHeapBase, kTcMetaBase);
  Env env(*machine, 0);
  const Addr a = tc.Malloc(env, 64);
  EXPECT_EQ(machine->address_map().PageBytesFor(a), kHugePageBytes);
  tc.Free(env, a);
}

TEST(TcAllocator, CrossCoreFreeFlowsThroughCentral) {
  auto machine = MakeMachine(2);
  TcAllocator tc(*machine, kTcHeapBase, kTcMetaBase);
  Env producer(*machine, 0);
  Env consumer(*machine, 1);
  // Enough frees on the consumer to force a flush batch to the central list,
  // then the producer's refill must find those exact blocks.
  std::vector<Addr> blocks;
  for (int i = 0; i < 200; ++i) {
    blocks.push_back(tc.Malloc(producer, 64));
  }
  for (const Addr b : blocks) {
    tc.Free(consumer, b);
  }
  tc.Flush(consumer);
  std::vector<Addr> again;
  for (int i = 0; i < 200; ++i) {
    again.push_back(tc.Malloc(producer, 64));
  }
  std::sort(blocks.begin(), blocks.end());
  std::sort(again.begin(), again.end());
  int recycled = 0;
  for (const Addr a : again) {
    if (std::binary_search(blocks.begin(), blocks.end(), a)) {
      ++recycled;
    }
  }
  EXPECT_GT(recycled, 100) << "blocks must recirculate through the central list";
  for (const Addr a : again) {
    tc.Free(producer, a);
  }
}

TEST(TcAllocator, LargeSpansReused) {
  auto machine = MakeMachine(1);
  TcAllocator tc(*machine, kTcHeapBase, kTcMetaBase);
  Env env(*machine, 0);
  const Addr a = tc.Malloc(env, 300 * 1024);
  tc.Free(env, a);
  const Addr b = tc.Malloc(env, 300 * 1024);
  EXPECT_EQ(b, a) << "freed large span satisfies the next large request";
  tc.Free(env, b);
}

// ---------------------------------------------------------------- mimalloc
TEST(MiAllocator, PageLocalLifoReuse) {
  auto machine = MakeMachine(1);
  MiAllocator mi(*machine, kMiHeapBase);
  Env env(*machine, 0);
  const Addr a = mi.Malloc(env, 64);
  const Addr b = mi.Malloc(env, 64);
  EXPECT_EQ(b, a + 64) << "bump carving within the page";
  mi.Free(env, a);
  EXPECT_EQ(mi.Malloc(env, 64), a) << "local_free collected into free and popped";
  mi.Free(env, a);
  mi.Free(env, b);
}

TEST(MiAllocator, CrossThreadFreeUsesThreadFreeList) {
  auto machine = MakeMachine(2);
  MiAllocator mi(*machine, kMiHeapBase);
  Env owner(*machine, 0);
  Env other(*machine, 1);
  const Addr a = mi.Malloc(owner, 64);
  const std::uint64_t rmw_before = machine->core(1).pmu().atomic_rmws;
  mi.Free(other, a);
  EXPECT_GT(machine->core(1).pmu().atomic_rmws, rmw_before)
      << "cross-core free XCHG-pushes onto thread_free";
  // Owner must be able to recover and reuse the block.
  std::vector<Addr> drained;
  for (int i = 0; i < 2000; ++i) {
    const Addr x = mi.Malloc(owner, 64);
    drained.push_back(x);
    if (x == a) {
      break;
    }
  }
  EXPECT_EQ(drained.back(), a) << "thread_free collected by the owner";
  for (const Addr x : drained) {
    mi.Free(owner, x);
  }
}

TEST(MiAllocator, FullPagesGoToDelayedList) {
  auto machine = MakeMachine(2);
  MiConfig cfg;
  cfg.page_bytes = 64 * 1024;
  MiAllocator mi(*machine, kMiHeapBase, cfg);
  Env owner(*machine, 0);
  Env other(*machine, 1);
  // Fill beyond one page so the first page gets flagged full.
  std::vector<Addr> blocks;
  for (int i = 0; i < 1200; ++i) {  // 64 KiB / 64 B = 1024 per page
    blocks.push_back(mi.Malloc(owner, 64));
  }
  // Cross-free blocks of the (full) first page: they ride the heap's
  // thread-delayed list and the owner must eventually reuse them.
  for (int i = 0; i < 100; ++i) {
    mi.Free(other, blocks[i]);
  }
  std::vector<Addr> reused;
  for (int i = 0; i < 200; ++i) {
    reused.push_back(mi.Malloc(owner, 64));
  }
  int recovered = 0;
  for (const Addr r : reused) {
    for (int i = 0; i < 100; ++i) {
      if (r == blocks[i]) {
        ++recovered;
        break;
      }
    }
  }
  EXPECT_GT(recovered, 50) << "delayed-freed blocks must be recovered";
}

TEST(MiAllocator, SegmentsAreOwnerTagged) {
  auto machine = MakeMachine(2);
  MiAllocator mi(*machine, kMiHeapBase);
  Env e0(*machine, 0);
  Env e1(*machine, 1);
  const Addr a = mi.Malloc(e0, 64);
  const Addr b = mi.Malloc(e1, 64);
  EXPECT_NE(AlignDown(a, 4 * 1024 * 1024), AlignDown(b, 4 * 1024 * 1024))
      << "each core allocates from its own segments";
  mi.Free(e0, a);
  mi.Free(e1, b);
}

}  // namespace
}  // namespace ngx
