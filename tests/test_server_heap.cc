// Tests for the single-owner server heaps (both Figure-2 layouts) and the
// UVM extension allocator.
#include <gtest/gtest.h>

#include <set>

#include "src/alloc/layout.h"
#include "src/core/gpu_malloc.h"
#include "src/core/server_heap.h"
#include "tests/test_util.h"
#include "src/workload/rng.h"

namespace ngx {
namespace {

class ServerHeapTest : public ::testing::TestWithParam<HeapKind> {
 protected:
  void SetUp() override {
    machine_ = MakeMachine(1);
    ServerHeapConfig cfg;
    cfg.heap_kind = GetParam();
    heap_ = MakeServerHeap(*machine_, kNgxHeapBase, kNgxMetaBase, cfg);
  }
  std::unique_ptr<Machine> machine_;
  std::unique_ptr<ServerHeap> heap_;
};

TEST_P(ServerHeapTest, BasicAllocFreeReuse) {
  Env env(*machine_, 0);
  const Addr a = heap_->Malloc(env, 100);
  ASSERT_NE(a, kNullAddr);
  EXPECT_EQ(a % 16, 0u);
  EXPECT_GE(heap_->UsableSize(env, a), 100u);
  heap_->Free(env, a);
  EXPECT_EQ(heap_->Malloc(env, 100), a) << "LIFO reuse";
  heap_->Free(env, a);
}

TEST_P(ServerHeapTest, RandomChurnInvariants) {
  Env env(*machine_, 0);
  Rng rng(5);
  std::map<Addr, std::uint64_t> live;
  for (int i = 0; i < 5000; ++i) {
    if (live.size() < 100 || rng.Chance(1, 2)) {
      const std::uint64_t size = rng.Range(1, 40000);  // crosses the large threshold
      const Addr a = heap_->Malloc(env, size);
      ASSERT_NE(a, kNullAddr);
      ASSERT_GE(heap_->UsableSize(env, a), size);
      // Disjointness.
      auto next = live.lower_bound(a);
      if (next != live.end()) {
        ASSERT_LE(a + size, next->first);
      }
      if (next != live.begin()) {
        auto prev = std::prev(next);
        ASSERT_LE(prev->first + prev->second, a);
      }
      live.emplace(a, size);
    } else {
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.Below(live.size())));
      heap_->Free(env, it->first);
      live.erase(it);
    }
  }
  const AllocatorStats s = heap_->stats();
  EXPECT_EQ(s.mallocs - s.frees, live.size());
}

TEST_P(ServerHeapTest, LargeBlocksMapAndUnmap) {
  Env env(*machine_, 0);
  const std::uint64_t mapped0 = heap_->stats().mapped_bytes;
  const Addr a = heap_->Malloc(env, 2 * 1024 * 1024);
  ASSERT_NE(a, kNullAddr);
  env.Store<std::uint64_t>(a + 2 * 1024 * 1024 - 8, 1);
  EXPECT_GE(heap_->UsableSize(env, a), 2u * 1024 * 1024);
  heap_->Free(env, a);
  EXPECT_LE(heap_->stats().mapped_bytes, mapped0 + (1u << 20));
}

TEST_P(ServerHeapTest, NoLockMeansNoAtomics) {
  Env env(*machine_, 0);
  for (int i = 0; i < 100; ++i) {
    heap_->Free(env, heap_->Malloc(env, 64));
  }
  EXPECT_EQ(machine_->core(0).pmu().atomic_rmws, 0u);
}

INSTANTIATE_TEST_SUITE_P(Layouts, ServerHeapTest,
                         ::testing::Values(HeapKind::kSegregated,
                                           HeapKind::kAggregated,
                                           HeapKind::kSegment),
                         [](const ::testing::TestParamInfo<HeapKind>& p) {
                           return HeapKindName(p.param);
                         });

TEST(ServerHeap, LegacyBoolFactoryStillSelectsLayouts) {
  auto machine = MakeMachine(1);
  ServerHeapConfig cfg;
  auto seg = MakeServerHeap(*machine, true, kNgxHeapBase, kNgxMetaBase, cfg);
  EXPECT_EQ(seg->name(), "ngx-segregated");
  auto machine2 = MakeMachine(1);
  auto agg = MakeServerHeap(*machine2, false, kNgxHeapBase, kNgxMetaBase, cfg);
  EXPECT_EQ(agg->name(), "ngx-aggregated");
}

TEST(ServerHeap, SegregatedFreeStackGrowsPastSaturation) {
  auto machine = MakeMachine(1);
  ServerHeapConfig cfg;
  cfg.stack_capacity = 4;  // tiny per-class free stack
  auto heap = MakeServerHeap(*machine, true, kNgxHeapBase, kNgxMetaBase, cfg);
  Env env(*machine, 0);
  std::vector<Addr> blocks;
  for (int i = 0; i < 16; ++i) {
    blocks.push_back(heap->Malloc(env, 64));
  }
  // Freeing more blocks than the dense stack holds used to drop the excess
  // silently -- a permanent leak. The overflow stack must keep every one of
  // them reusable.
  for (const Addr a : blocks) {
    heap->Free(env, a);
  }
  EXPECT_EQ(heap->stats().bytes_live, 0u);
  const std::uint64_t mapped_after_free = heap->stats().mapped_bytes;
  std::set<Addr> reused;
  for (int i = 0; i < 16; ++i) {
    reused.insert(heap->Malloc(env, 64));
  }
  EXPECT_EQ(reused, std::set<Addr>(blocks.begin(), blocks.end()))
      << "overflowed frees must be recycled before any fresh carve";
  EXPECT_EQ(heap->stats().mapped_bytes, mapped_after_free);
  for (const Addr a : blocks) {
    heap->Free(env, a);
  }
  EXPECT_EQ(heap->stats().bytes_live, 0u);
}

TEST(ServerHeapDeathTest, SegregatedFreeStackOverflowExhaustionFailsLoudly) {
  auto machine = MakeMachine(1);
  ServerHeapConfig cfg;
  cfg.stack_capacity = 4;  // dense 4 + overflow 4*64 = 260 pending frees max
  auto heap = MakeServerHeap(*machine, true, kNgxHeapBase, kNgxMetaBase, cfg);
  Env env(*machine, 0);
  std::vector<Addr> blocks;
  for (int i = 0; i < 300; ++i) {
    blocks.push_back(heap->Malloc(env, 64));
  }
  // Past the overflow bound the heap must abort with a diagnostic, never
  // drop a block.
  EXPECT_DEATH_IF_SUPPORTED(
      {
        for (const Addr a : blocks) {
          heap->Free(env, a);
        }
      },
      "overflow exhausted");
}

TEST(ServerHeap, LockedVariantIssuesAtomics) {
  auto machine = MakeMachine(1);
  ServerHeapConfig cfg;
  cfg.use_lock = true;
  auto heap = MakeServerHeap(*machine, true, kNgxHeapBase, kNgxMetaBase, cfg);
  Env env(*machine, 0);
  heap->Free(env, heap->Malloc(env, 64));
  EXPECT_EQ(machine->core(0).pmu().atomic_rmws, 2u) << "one lock acquire per op";
}

TEST(ServerHeap, SegregatedMetadataLivesInMetaWindow) {
  auto machine = MakeMachine(1);
  ServerHeapConfig cfg;
  auto heap = MakeServerHeap(*machine, true, kNgxHeapBase, kNgxMetaBase, cfg);
  Env env(*machine, 0);
  const Addr a = heap->Malloc(env, 64);
  heap->Free(env, a);
  // The span's 16-bit class tag must live in the metadata window, far from
  // the block itself.
  const Region* r = machine->address_map().Find(kNgxMetaBase);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->name, "ngx-meta");
  EXPECT_GE(a, kNgxHeapBase);
  EXPECT_LT(a, kNgxHeapBase + kHeapWindow);
}

// ------------------------------------------------------------------- UVM
TEST(UvmAllocator, MigratesOnFirstTouchFromEachSide) {
  auto machine = MakeMachine(1);
  UvmAllocator uvm(*machine, kGpuHeapBase);
  Env env(*machine, 0);
  const Addr a = uvm.Malloc(env, 256 * 1024);  // 4 UVM pages of 64 KiB
  ASSERT_NE(a, kNullAddr);
  uvm.HostAccess(env, a, 256 * 1024, true);
  EXPECT_EQ(uvm.stats().host_to_device_migrations, 0u);
  uvm.DeviceAccess(env, a, 256 * 1024, false);
  EXPECT_EQ(uvm.stats().host_to_device_migrations, 4u);
  uvm.DeviceAccess(env, a, 256 * 1024, false);
  EXPECT_EQ(uvm.stats().host_to_device_migrations, 4u) << "already resident";
  uvm.HostAccess(env, a, 64 * 1024, false);
  EXPECT_EQ(uvm.stats().device_to_host_migrations, 1u) << "partial migration back";
  uvm.Free(env, a);
}

TEST(UvmAllocator, AsyncAllocDefersDriverWork) {
  auto machine = MakeMachine(1);
  UvmAllocator uvm(*machine, kGpuHeapBase);
  Env env(*machine, 0);
  uvm.Free(env, uvm.Malloc(env, 4096));  // warm the driver pool slab
  const std::uint64_t t0 = env.now();
  std::vector<Addr> bufs;
  for (int i = 0; i < 16; ++i) {
    bufs.push_back(uvm.MallocAsync(env, 4096));
  }
  const std::uint64_t enqueue_cost = env.now() - t0;
  uvm.StreamSync(env);
  const std::uint64_t total = env.now() - t0;
  EXPECT_LT(enqueue_cost, total / 2) << "most cost is paid at the sync point";
  EXPECT_EQ(uvm.stats().async_allocs, 16u);
  for (const Addr b : bufs) {
    uvm.Free(env, b);
  }
  EXPECT_EQ(uvm.stats().frees, 17u);  // 16 + the warm-up pair
}

TEST(UvmAllocator, FreeResetsResidency) {
  auto machine = MakeMachine(1);
  UvmAllocator uvm(*machine, kGpuHeapBase);
  Env env(*machine, 0);
  const Addr a = uvm.Malloc(env, 64 * 1024);
  uvm.DeviceAccess(env, a, 64 * 1024, true);
  uvm.Free(env, a);
  const Addr b = uvm.Malloc(env, 64 * 1024);
  // Fresh allocation (even at a reused address range) must not think pages
  // are device-resident.
  uvm.HostAccess(env, b, 64 * 1024, true);
  EXPECT_EQ(uvm.stats().device_to_host_migrations, 0u);
  uvm.Free(env, b);
}

}  // namespace
}  // namespace ngx
