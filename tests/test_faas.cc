// Tests for the FaaS heap-image extension and the prefetcher option.
#include <gtest/gtest.h>

#include "src/alloc/layout.h"
#include "src/alloc/mimalloc/mi_allocator.h"
#include "src/core/faas.h"
#include "tests/test_util.h"

namespace ngx {
namespace {

TEST(FaasImage, CapturesAndRestoresHeapContents) {
  // Template machine: allocate and initialize some objects.
  Machine tmpl(MachineConfig::Default(1));
  MiAllocator alloc(tmpl, kMiHeapBase);
  Env tenv(tmpl, 0);
  std::vector<Addr> objs;
  for (int i = 0; i < 50; ++i) {
    const Addr o = alloc.Malloc(tenv, 64);
    tenv.Store<std::uint64_t>(o, 0xAB00 + static_cast<std::uint64_t>(i));
    objs.push_back(o);
  }
  const FaasImage image = FaasImage::Capture(tmpl, kMiHeapBase, kMiHeapBase + kHeapWindow);
  EXPECT_GT(image.total_bytes(), 0u);
  EXPECT_GT(image.region_count(), 0u);

  // Fresh machine: restore; contents and addresses must match the template.
  Machine fresh(MachineConfig::Default(1));
  Env fenv(fresh, 0);
  image.Restore(fenv);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(fenv.Load<std::uint64_t>(objs[static_cast<std::size_t>(i)]),
              0xAB00u + static_cast<std::uint64_t>(i));
  }
  // Regions registered with the original page kinds.
  EXPECT_EQ(fresh.address_map().PageBytesFor(objs[0]),
            tmpl.address_map().PageBytesFor(objs[0]));
}

TEST(FaasImage, RestoreChargesPerRegionAndPage) {
  Machine tmpl(MachineConfig::Default(1));
  MiAllocator alloc(tmpl, kMiHeapBase);
  Env tenv(tmpl, 0);
  alloc.Malloc(tenv, 64);
  const FaasImage image = FaasImage::Capture(tmpl, kMiHeapBase, kMiHeapBase + kHeapWindow);

  Machine fresh(MachineConfig::Default(1));
  Env fenv(fresh, 0);
  const std::uint64_t t0 = fenv.now();
  FaasRestoreConfig cfg;
  cfg.restore_page_cycles = 100;
  image.Restore(fenv, cfg);
  EXPECT_GE(fenv.now() - t0, image.page_count() * 100 / 4)
      << "restore must charge real time";
}

TEST(FaasImage, EmptyRangeCapturesNothing) {
  Machine tmpl(MachineConfig::Default(1));
  const FaasImage image = FaasImage::Capture(tmpl, 0x9999'0000, 0x9999'1000);
  EXPECT_EQ(image.region_count(), 0u);
  EXPECT_EQ(image.total_bytes(), 0u);
}

TEST(AddressMapRegions, RegionsInRespectsBounds) {
  AddressMap map;
  map.Add(Region{0x1000, 0x1000, PageKind::kSmall4K, "a"});
  map.Add(Region{0x5000, 0x1000, PageKind::kSmall4K, "b"});
  map.Add(Region{0x9000, 0x1000, PageKind::kSmall4K, "c"});
  const auto mid = map.RegionsIn(0x2000, 0x9000);
  ASSERT_EQ(mid.size(), 1u);
  EXPECT_EQ(mid[0].name, "b");
  EXPECT_EQ(map.RegionsIn(0, ~0ull).size(), 3u);
}

TEST(Prefetcher, NextLineCutsStreamingMisses) {
  MachineConfig off_cfg = MachineConfig::Default(1);
  MachineConfig on_cfg = MachineConfig::Default(1);
  on_cfg.next_line_prefetch = true;
  Machine off(off_cfg);
  Machine on(on_cfg);
  Env eoff(off, 0);
  Env eon(on, 0);
  for (int i = 0; i < 512; ++i) {
    eoff.Load<std::uint64_t>(0x10'0000 + static_cast<Addr>(i) * 64);
    eon.Load<std::uint64_t>(0x10'0000 + static_cast<Addr>(i) * 64);
  }
  EXPECT_EQ(off.core(0).pmu().llc_load_misses, 512u);
  EXPECT_LE(on.core(0).pmu().llc_load_misses, 2u) << "stream fully prefetched";
  EXPECT_LT(on.core(0).now(), off.core(0).now());
}

TEST(Prefetcher, DoesNotStealRemotelyOwnedLines) {
  MachineConfig cfg = MachineConfig::Default(2);
  cfg.next_line_prefetch = true;
  Machine machine(cfg);
  Env e0(machine, 0);
  Env e1(machine, 1);
  e1.Store<std::uint64_t>(0x2040, 77);  // core 1 owns the line after 0x2000
  e0.Load<std::uint64_t>(0x2000);       // would prefetch 0x2040
  EXPECT_EQ(machine.OwnerOf(0x2040), 1) << "prefetch must not downgrade the owner";
  EXPECT_EQ(e1.Load<std::uint64_t>(0x2040), 77u);
}

TEST(Prefetcher, CoherentUnderMixedTraffic) {
  MachineConfig cfg = MachineConfig::Default(2);
  cfg.next_line_prefetch = true;
  Machine machine(cfg);
  std::uint64_t shadow[64] = {};
  std::uint64_t x = 99;
  for (int i = 0; i < 4000; ++i) {
    x = x * 2862933555777941757ull + 3037000493ull;
    const int core = static_cast<int>(x % 2);
    const std::size_t slot = (x >> 8) % 64;
    Env env(machine, core);
    if ((x >> 20) & 1) {
      shadow[slot] = x;
      env.Store<std::uint64_t>(0x7000 + slot * 64, x);
    } else {
      ASSERT_EQ(env.Load<std::uint64_t>(0x7000 + slot * 64), shadow[slot]);
    }
  }
}

}  // namespace
}  // namespace ngx
