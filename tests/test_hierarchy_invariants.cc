// Deeper cache-hierarchy invariants: inclusion, back-invalidation, writeback
// integrity, and runner behaviour.
#include <gtest/gtest.h>

#include "src/alloc/registry.h"
#include "src/workload/churn.h"
#include "src/alloc/sim_lock.h"
#include "src/workload/runner.h"
#include "tests/test_util.h"

namespace ngx {
namespace {

TEST(Hierarchy, L1IsSubsetOfL2) {
  Machine m(MachineConfig::Default(1));
  Env env(m, 0);
  std::uint64_t x = 1;
  for (int i = 0; i < 20000; ++i) {
    x = x * 6364136223846793005ull + 1;
    const Addr a = 0x10000 + (x % 100000) * 64;
    if (x & 1) {
      env.Store<std::uint64_t>(a, x);
    } else {
      env.Load<std::uint64_t>(a);
    }
  }
  Core& c = m.core(0);
  ASSERT_TRUE(c.has_l2());
  for (const Addr line : c.l1d().ValidLines()) {
    EXPECT_TRUE(c.l2()->Contains(line)) << "inclusion violated for line " << line;
  }
}

TEST(Hierarchy, LlcEvictionBackInvalidatesPrivateCopies) {
  // Tiny LLC so evictions are easy to force.
  MachineConfig cfg = MachineConfig::Default(2);
  cfg.llc = CacheConfig{8 * 1024, 2, kCacheLineBytes, ReplacementKind::kLru, 40};
  Machine m(cfg);
  Env e0(m, 0);
  e0.Store<std::uint64_t>(0x1000, 7);
  ASSERT_TRUE(m.LlcContains(0x1000));
  // Thrash the LLC set containing 0x1000 from core 1.
  Env e1(m, 1);
  for (int i = 1; i <= 8; ++i) {
    e1.Load<std::uint64_t>(0x1000 + static_cast<Addr>(i) * 8 * 1024 / 2);
  }
  if (!m.LlcContains(0x1000)) {
    // Back-invalidation must have removed every private copy too.
    EXPECT_EQ(m.SharersOf(0x1000), 0u);
    EXPECT_EQ(m.OwnerOf(0x1000), -1);
  }
  // Data survives regardless (memory is the home).
  EXPECT_EQ(e0.Load<std::uint64_t>(0x1000), 7u);
}

TEST(Hierarchy, DirtyDataSurvivesFullEvictionChain) {
  MachineConfig cfg = MachineConfig::Default(1);
  cfg.cores[0].l1d.size_bytes = 1024;
  cfg.cores[0].l1d.ways = 2;
  cfg.cores[0].l2.size_bytes = 4096;
  cfg.cores[0].l2.ways = 2;
  cfg.llc = CacheConfig{16 * 1024, 2, kCacheLineBytes, ReplacementKind::kLru, 40};
  Machine m(cfg);
  Env env(m, 0);
  // Write a sequence far larger than every cache, then verify all of it.
  for (Addr i = 0; i < 4096; ++i) {
    env.Store<std::uint64_t>(0x100000 + i * 64, i ^ 0xABCDEF);
  }
  for (Addr i = 0; i < 4096; ++i) {
    ASSERT_EQ(env.Load<std::uint64_t>(0x100000 + i * 64), i ^ 0xABCDEF);
  }
  EXPECT_GT(m.memory_writes(), 0u) << "dirty evictions must reach memory";
}

TEST(Hierarchy, WritebackCountersMove) {
  MachineConfig cfg = MachineConfig::Default(1);
  cfg.cores[0].l1d.size_bytes = 1024;
  cfg.cores[0].l1d.ways = 2;
  cfg.cores[0].l2.size_bytes = 2048;
  cfg.cores[0].l2.ways = 2;
  Machine m(cfg);
  Env env(m, 0);
  for (Addr i = 0; i < 512; ++i) {
    env.Store<std::uint64_t>(0x5000 + i * 64, i);
  }
  EXPECT_GT(m.core(0).pmu().writebacks, 0u);
}

TEST(Runner, ServerCoreExcludedFromAppAggregate) {
  Machine m(MachineConfig::Default(3));
  auto alloc = CreateAllocator("tcmalloc", m);
  ChurnConfig cfg;
  cfg.live_blocks = 50;
  cfg.ops = 200;
  Churn workload(cfg);
  RunOptions opt;
  opt.cores = {0, 1};
  opt.server_cores = {2};
  Env server_env(m, 2);
  server_env.Work(12345);  // pretend server activity
  const RunResult r = RunWorkload(m, *alloc, workload, opt);
  EXPECT_EQ(r.server.instructions, 12345u);
  EXPECT_EQ(r.app.instructions,
            m.core(0).pmu().instructions + m.core(1).pmu().instructions);
  EXPECT_EQ(r.per_core.size(), 3u);
}

TEST(Runner, WallCyclesIsMaxOverAppCores) {
  Machine m(MachineConfig::Default(2));
  auto alloc = CreateAllocator("mimalloc", m);
  ChurnConfig cfg;
  cfg.live_blocks = 30;
  cfg.ops = 100;
  Churn workload(cfg);
  RunOptions opt;
  opt.cores = {0, 1};
  const RunResult r = RunWorkload(m, *alloc, workload, opt);
  EXPECT_EQ(r.wall_cycles, std::max(m.core(0).now(), m.core(1).now()));
}

TEST(Runner, FlushAtEndCanBeDisabled) {
  Machine m(MachineConfig::Default(1));
  auto alloc = CreateAllocator("tcmalloc", m);
  ChurnConfig cfg;
  cfg.live_blocks = 30;
  cfg.ops = 100;
  Churn workload(cfg);
  RunOptions opt;
  opt.cores = {0};
  opt.flush_at_end = false;
  RunWorkload(m, *alloc, workload, opt);
  // Without the flush, the thread cache may still hold blocks: footprint
  // stats are allowed to differ, but balance still holds.
  EXPECT_EQ(alloc->stats().mallocs, alloc->stats().frees);
}

TEST(SimLockDeath, DoubleAcquireAsserts) {
  auto machine = MakeMachine(1);
  SimLock lock(0x4000);
  Env env(*machine, 0);
  lock.Acquire(env);
  EXPECT_DEATH_IF_SUPPORTED(lock.Acquire(env), "run to completion");
}

TEST(Scheduler, TieBreaksByThreadIndexDeterministically) {
  Machine m(MachineConfig::Default(2));
  std::vector<int> order;
  struct T : SimThread {
    T(int c, std::vector<int>* o, int i) : core(c), order(o), id(i) {}
    int core;
    std::vector<int>* order;
    int id;
    int left = 2;
    int core_id() const override { return core; }
    bool Step(Env& env) override {
      order->push_back(id);
      env.Work(100);
      return --left > 0;
    }
  };
  T a(0, &order, 0);
  T b(1, &order, 1);
  Scheduler::Run(m, {&a, &b});
  // Equal clocks at every step: strict alternation starting with index 0.
  EXPECT_EQ(order, (std::vector<int>{0, 1, 0, 1}));
}

}  // namespace
}  // namespace ngx
