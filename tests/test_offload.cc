// Tests for the offload channel protocol and engine timing.
#include <gtest/gtest.h>

#include "src/offload/channel.h"
#include "src/offload/offload_engine.h"
#include "tests/test_util.h"

namespace ngx {
namespace {

constexpr Addr kTestChannelBase = 0x0700'0000'0000ull;

class EchoServer : public OffloadServer {
 public:
  std::uint64_t HandleRequest(Env& env, int client, OffloadOp op,
                              std::uint64_t arg) override {
    env.Work(work_per_request);
    last_client = client;
    last_op = op;
    if (op == OffloadOp::kFree) {
      freed.push_back(arg);
      return 0;
    }
    return arg + 2;
  }

  std::uint64_t work_per_request = 50;
  int last_client = -1;
  OffloadOp last_op = OffloadOp::kMalloc;
  std::vector<std::uint64_t> freed;
};

class OffloadEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    machine_ = MakeMachine(3);
    machine_->address_map().Add(
        Region{kTestChannelBase, kChannelStride * 3, PageKind::kSmall4K, "chan"});
    engine_ = std::make_unique<OffloadEngine>(*machine_, /*server_core=*/2, kTestChannelBase,
                                              /*ring_capacity=*/8);
    engine_->set_server(&server_);
  }

  std::unique_ptr<Machine> machine_;
  std::unique_ptr<OffloadEngine> engine_;
  EchoServer server_;
};

TEST_F(OffloadEngineTest, SyncRequestRoundTrips) {
  Env env(*machine_, 0);
  EXPECT_EQ(engine_->SyncRequest(env, OffloadOp::kMalloc, 40), 42u);
  EXPECT_EQ(server_.last_client, 0);
  EXPECT_EQ(engine_->stats().sync_requests, 1u);
}

TEST_F(OffloadEngineTest, ClientWaitsForServer) {
  Env env(*machine_, 0);
  const std::uint64_t t0 = env.now();
  engine_->SyncRequest(env, OffloadOp::kMalloc, 1);
  // The client must have advanced at least by the server's handler work.
  EXPECT_GE(env.now() - t0, server_.work_per_request);
}

TEST_F(OffloadEngineTest, ServerSerializesClients) {
  // Two clients issuing at the same time: the second must queue behind the
  // first on the server clock.
  Env e0(*machine_, 0);
  Env e1(*machine_, 1);
  server_.work_per_request = 5000;
  engine_->SyncRequest(e0, OffloadOp::kMalloc, 1);
  engine_->SyncRequest(e1, OffloadOp::kMalloc, 2);
  EXPECT_GE(machine_->core(1).now(), machine_->core(2).now() - 10);
  // Two handler invocations of Work(5000) at the server's CPI.
  EXPECT_GE(machine_->core(2).now(),
            static_cast<std::uint64_t>(2 * 5000 *
                                       machine_->core(2).config().cpi));
  EXPECT_GE(engine_->stats().server_busy_waits, 1u);  // ring-poll loads may add a second
}

TEST_F(OffloadEngineTest, AsyncFreeDoesNotBlockClient) {
  Env env(*machine_, 0);
  server_.work_per_request = 100000;
  const std::uint64_t t0 = env.now();
  engine_->AsyncRequest(env, OffloadOp::kFree, 0xabc);
  EXPECT_LT(env.now() - t0, 5000u) << "async free must not pay the server's work";
  EXPECT_TRUE(server_.freed.empty()) << "not processed yet";
  engine_->DrainAll();
  ASSERT_EQ(server_.freed.size(), 1u);
  EXPECT_EQ(server_.freed[0], 0xabcu);
}

TEST_F(OffloadEngineTest, RingOrderPreserved) {
  Env env(*machine_, 0);
  for (std::uint64_t i = 0; i < 6; ++i) {
    engine_->AsyncRequest(env, OffloadOp::kFree, 100 + i);
  }
  engine_->DrainAll();
  ASSERT_EQ(server_.freed.size(), 6u);
  for (std::uint64_t i = 0; i < 6; ++i) {
    EXPECT_EQ(server_.freed[i], 100 + i);
  }
}

TEST_F(OffloadEngineTest, RingFullBackpressure) {
  Env env(*machine_, 0);
  for (std::uint64_t i = 0; i < 20; ++i) {  // capacity is 8
    engine_->AsyncRequest(env, OffloadOp::kFree, i);
  }
  EXPECT_GT(engine_->stats().ring_full_stalls, 0u);
  engine_->DrainAll();
  EXPECT_EQ(server_.freed.size(), 20u);
}

TEST_F(OffloadEngineTest, PendingFreesOrderedBeforeSyncRequest) {
  Env env(*machine_, 0);
  engine_->AsyncRequest(env, OffloadOp::kFree, 7);
  engine_->SyncRequest(env, OffloadOp::kMalloc, 1);
  // The free must have been drained before the malloc was served.
  ASSERT_EQ(server_.freed.size(), 1u);
}

TEST_F(OffloadEngineTest, MailboxLinesActuallyTransfer) {
  Env env(*machine_, 0);
  engine_->SyncRequest(env, OffloadOp::kMalloc, 1);
  engine_->SyncRequest(env, OffloadOp::kMalloc, 1);
  // Both sides must show coherence traffic on the mailbox lines.
  EXPECT_GT(machine_->core(0).pmu().remote_hitm + machine_->core(0).pmu().invalidations_sent,
            0u);
  EXPECT_GT(machine_->core(2).pmu().remote_hitm + machine_->core(2).pmu().invalidations_sent,
            0u);
}

TEST(Channel, PayloadIntegrity) {
  auto machine = MakeMachine(2);
  machine->address_map().Add(
      Region{kTestChannelBase, kChannelStride, PageKind::kSmall4K, "chan"});
  Channel ch(kTestChannelBase, 4);
  Env client(*machine, 0);
  Env server(*machine, 1);
  ch.ClientSend(client, 1, OffloadOp::kUsableSize, 0x1234);
  const Channel::Request req = ch.ServerReadRequest(server);
  EXPECT_EQ(req.seq, 1u);
  EXPECT_EQ(req.op, OffloadOp::kUsableSize);
  EXPECT_EQ(req.arg, 0x1234u);
  ch.ServerRespond(server, 1, 999);
  EXPECT_EQ(ch.ClientReceive(client, 1), 999u);
}

TEST(Channel, RingWrapsAround) {
  auto machine = MakeMachine(2);
  machine->address_map().Add(
      Region{kTestChannelBase, kChannelStride, PageKind::kSmall4K, "chan"});
  Channel ch(kTestChannelBase, 4);
  Env client(*machine, 0);
  Env server(*machine, 1);
  std::vector<std::uint64_t> got;
  for (std::uint64_t round = 0; round < 3; ++round) {
    for (std::uint64_t i = 0; i < 4; ++i) {
      ASSERT_GT(ch.RingSpace(client), 0u);
      ch.RingPush(client, round * 10 + i);
    }
    EXPECT_EQ(ch.RingSpace(client), 0u);
    ch.ServerDrainRing(server, [&](std::uint64_t v) { got.push_back(v); });
  }
  ASSERT_EQ(got.size(), 12u);
  EXPECT_EQ(got[4], 10u);
  EXPECT_EQ(got[11], 23u);
}

}  // namespace
}  // namespace ngx
