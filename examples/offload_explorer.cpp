// offload_explorer: interactive-ish exploration of the paper's research
// questions from the command line. Pick a workload, an allocator-room core
// type, and the NextGen knobs; get the full PMU picture for both sides.
//
//   ./build/examples/offload_explorer [--core=big|inorder|nearmem]
//                                     [--sync-free] [--keep-atomics]
//                                     [--aggregated] [--predict]
//                                     [--workload=xalanc|churn|xmalloc]
#include <cstring>
#include <iostream>
#include <string>

#include "src/core/nextgen_malloc.h"
#include "src/workload/churn.h"
#include "src/workload/report.h"
#include "src/workload/runner.h"
#include "src/workload/xalanc.h"
#include "src/workload/xmalloc.h"

using namespace ngx;

int main(int argc, char** argv) {
  std::string core_type = "big";
  std::string workload_name = "xalanc";
  NgxConfig cfg = NgxConfig::PaperPrototype();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--core=", 0) == 0) {
      core_type = arg.substr(7);
    } else if (arg == "--sync-free") {
      cfg.async_free = false;
    } else if (arg == "--keep-atomics") {
      cfg.remove_atomics = false;
    } else if (arg == "--aggregated") {
      cfg.segregated_metadata = false;
    } else if (arg == "--predict") {
      cfg.prediction = true;
    } else if (arg.rfind("--workload=", 0) == 0) {
      workload_name = arg.substr(11);
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      return 1;
    }
  }

  const int kAppThreads = workload_name == "xalanc" ? 1 : 3;
  MachineConfig mc = MachineConfig::ScaledWorkstation(kAppThreads + 1);
  const int server = kAppThreads;
  if (core_type == "inorder") {
    mc.cores[server] = CoreConfig::InOrder();
  } else if (core_type == "nearmem") {
    mc.cores[server] = CoreConfig::NearMemory();
  }
  Machine machine(mc);
  NgxSystem sys = MakeNgxSystem(machine, cfg, server);

  std::unique_ptr<Workload> workload;
  if (workload_name == "xalanc") {
    XalancConfig c;
    c.documents = 6;
    c.nodes_per_doc = 6000;
    workload = std::make_unique<XalancLike>(c);
  } else if (workload_name == "churn") {
    workload = std::make_unique<Churn>();
  } else if (workload_name == "xmalloc") {
    workload = std::make_unique<XmallocLike>();
  } else {
    std::cerr << "unknown workload: " << workload_name << "\n";
    return 1;
  }

  std::cout << "workload=" << workload->name() << " server-core=" << core_type
            << " async_free=" << cfg.async_free << " segregated=" << cfg.segregated_metadata
            << " atomics_removed=" << cfg.remove_atomics << " prediction=" << cfg.prediction
            << "\n\n";

  RunOptions opt;
  opt.cores = FirstCores(kAppThreads);
  opt.server_cores = {server};
  const RunResult r = RunWorkload(machine, *sys.allocator, *workload, opt);
  sys.fabric->DrainAll();

  std::cout << "application cores (" << kAppThreads << "):\n" << r.app.ToString() << "\n";
  std::cout << "allocator core:\n" << r.server.ToString() << "\n";
  std::cout << "wall cycles: " << FormatSci(static_cast<double>(r.wall_cycles))
            << "   time in alloc stubs: " << FormatFixed(100.0 * r.MallocTimeShare(), 2)
            << "%\n";
  const OffloadEngineStats es = sys.fabric->TotalStats();
  std::cout << "engine: " << es.sync_requests << " round trips, " << es.async_ops
            << " async frees, " << es.ring_full_stalls << " ring-full stalls, "
            << es.server_busy_waits << " queueing waits\n";
  if (cfg.prediction) {
    std::cout << "stash hits: " << sys.allocator->stash_hits() << " vs "
              << sys.allocator->sync_mallocs() << " round trips\n";
  }
  return 0;
}
