// Quickstart: build a simulated machine, create NextGen-Malloc with its
// dedicated allocator core, allocate and free, and read the PMU counters.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "src/core/nextgen_malloc.h"
#include "src/workload/report.h"

using namespace ngx;

int main() {
  // A 4-core machine; NextGen-Malloc gets core 3 as its own room.
  Machine machine(MachineConfig::Default(4));
  NgxSystem sys = MakeNgxSystem(machine, NgxConfig::PaperPrototype());
  std::cout << "allocator server runs on core " << sys.fabric->server_cores()[0] << "\n\n";

  // The application runs on core 0. Every Load/Store below is a *timed*
  // simulated access that walks the cache/TLB hierarchy.
  Env app(machine, 0);

  // malloc: a synchronous mailbox round trip to the allocator core.
  const Addr block = sys.allocator->Malloc(app, 256);
  std::cout << "malloc(256) -> 0x" << std::hex << block << std::dec << " ("
            << sys.allocator->UsableSize(app, block) << " usable bytes)\n";

  // Use the memory like a program would.
  app.Store<std::uint64_t>(block, 0xfeedface);
  std::cout << "stored/loaded: 0x" << std::hex << app.Load<std::uint64_t>(block) << std::dec
            << "\n";

  // free: fire-and-forget onto the async ring (not on the critical path).
  sys.allocator->Free(app, block);
  sys.allocator->Flush(app);  // drain for deterministic stats

  std::cout << "\napplication core counters:\n"
            << machine.core(0).pmu().ToString() << "\n"
            << "allocator core counters (metadata stays here -- the whole point):\n"
            << machine.core(3).pmu().ToString();

  const AllocatorStats s = sys.allocator->stats();
  std::cout << "\nallocator stats: " << s.mallocs << " mallocs, " << s.frees << " frees, "
            << s.mapped_bytes << " bytes mapped\n";
  return 0;
}
