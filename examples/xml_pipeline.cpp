// xml_pipeline: the paper's motivating scenario -- an XML-processing
// pipeline (xalancbmk-like) whose end-to-end time depends strongly on the
// allocator although it spends only a few percent of its time in
// malloc/free.
//
// Runs the same pipeline under every baseline allocator plus NextGen-Malloc
// and prints a Figure-1-style comparison.
//
//   ./build/examples/xml_pipeline [documents] [nodes_per_doc]
#include <cstdlib>
#include <iostream>

#include "src/alloc/registry.h"
#include "src/core/nextgen_malloc.h"
#include "src/workload/report.h"
#include "src/workload/runner.h"
#include "src/workload/xalanc.h"

using namespace ngx;

int main(int argc, char** argv) {
  XalancConfig wl_cfg;
  wl_cfg.documents = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 6;
  wl_cfg.nodes_per_doc = argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 6000;
  wl_cfg.compute_per_node = 1200;

  std::cout << "XML pipeline: " << wl_cfg.documents << " documents x " << wl_cfg.nodes_per_doc
            << " nodes\n\n";

  TextTable t({"allocator", "exec cycles", "LLC-load-MPKI", "dTLB-load-MPKI",
               "time in alloc", "heap mapped"});

  std::uint64_t pt_cycles = 0;
  for (const std::string& name : BaselineAllocatorNames()) {
    Machine machine(MachineConfig::ScaledWorkstation(2));
    auto alloc = CreateAllocator(name, machine);
    XalancLike workload(wl_cfg);
    RunOptions opt;
    opt.cores = {0};
    const RunResult r = RunWorkload(machine, *alloc, workload, opt);
    if (pt_cycles == 0) {
      pt_cycles = r.wall_cycles;
    }
    t.AddRow({name, FormatSci(static_cast<double>(r.wall_cycles)),
              FormatFixed(r.app.LlcLoadMpki(), 3), FormatFixed(r.app.DtlbLoadMpki(), 3),
              FormatFixed(100.0 * r.MallocTimeShare(), 1) + "%",
              FormatInt(r.alloc_stats.mapped_bytes)});
    std::cerr << "[done] " << name << "\n";
  }
  {
    Machine machine(MachineConfig::ScaledWorkstation(2));
    NgxSystem sys = MakeNgxSystem(machine, NgxConfig::PaperPrototype(), 1);
    XalancLike workload(wl_cfg);
    RunOptions opt;
    opt.cores = {0};
    opt.server_cores = {1};
    const RunResult r = RunWorkload(machine, *sys.allocator, workload, opt);
    sys.fabric->DrainAll();
    t.AddRow({"nextgen (offloaded)", FormatSci(static_cast<double>(r.wall_cycles)),
              FormatFixed(r.app.LlcLoadMpki(), 3), FormatFixed(r.app.DtlbLoadMpki(), 3),
              FormatFixed(100.0 * r.MallocTimeShare(), 1) + "%",
              FormatInt(r.alloc_stats.mapped_bytes)});
    std::cerr << "[done] nextgen\n";
  }

  std::cout << t.ToString() << "\n(PTMalloc2 baseline: " << FormatSci(double(pt_cycles))
            << " cycles)\n";
  return 0;
}
