// server_churn: a multi-threaded server-style scenario (larson-like): N
// worker threads continuously replace objects in a shared table, so most
// frees release memory another thread allocated -- the contention pattern
// Section 2.3 blames for thread-caching allocators' metadata bouncing.
//
//   ./build/examples/server_churn [threads] [ops_per_thread]
#include <cstdlib>
#include <iostream>

#include "src/alloc/registry.h"
#include "src/core/nextgen_malloc.h"
#include "src/workload/churn.h"
#include "src/workload/report.h"
#include "src/workload/runner.h"

using namespace ngx;

int main(int argc, char** argv) {
  const int threads = argc > 1 ? std::atoi(argv[1]) : 4;
  LarsonConfig wl_cfg;
  wl_cfg.ops = argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 15000;

  std::cout << "server churn: " << threads << " worker threads, " << wl_cfg.ops
            << " replacements each\n\n";

  TextTable t({"allocator", "wall cycles", "LLC-load-misses", "remote-HITM",
               "invalidations", "mapped bytes"});

  for (const std::string& name : BaselineAllocatorNames()) {
    Machine machine(MachineConfig::Default(threads));
    auto alloc = CreateAllocator(name, machine);
    LarsonLike workload(wl_cfg);
    RunOptions opt;
    opt.cores = FirstCores(threads);
    const RunResult r = RunWorkload(machine, *alloc, workload, opt);
    t.AddRow({name, FormatSci(static_cast<double>(r.wall_cycles)),
              FormatSci(static_cast<double>(r.app.llc_load_misses)),
              FormatSci(static_cast<double>(r.app.remote_hitm)),
              FormatSci(static_cast<double>(r.app.invalidations_sent)),
              FormatInt(r.alloc_stats.mapped_bytes)});
    std::cerr << "[done] " << name << "\n";
  }
  // NextGen-Malloc with one extra core as the allocator's room: every thread
  // talks to the same dedicated server, which serializes cross-thread frees
  // without any allocator-side atomics.
  {
    Machine machine(MachineConfig::Default(threads + 1));
    NgxSystem sys = MakeNgxSystem(machine, NgxConfig::PaperPrototype(), threads);
    LarsonLike workload(wl_cfg);
    RunOptions opt;
    opt.cores = FirstCores(threads);
    opt.server_cores = {threads};
    const RunResult r = RunWorkload(machine, *sys.allocator, workload, opt);
    sys.fabric->DrainAll();
    t.AddRow({"nextgen (+1 core)", FormatSci(static_cast<double>(r.wall_cycles)),
              FormatSci(static_cast<double>(r.app.llc_load_misses)),
              FormatSci(static_cast<double>(r.app.remote_hitm)),
              FormatSci(static_cast<double>(r.app.invalidations_sent)),
              FormatInt(r.alloc_stats.mapped_bytes)});
    std::cerr << "[done] nextgen\n";
  }

  std::cout << t.ToString();
  return 0;
}
